(* Tests for the OpenFlow switch model: flow entries, priority tables,
   and the packet-processing pipeline. *)

open Sdx_net
open Sdx_policy
open Sdx_openflow

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let flow ?(priority = 100) ?(pattern = Pattern.all) actions =
  Flow.make ~priority ~pattern ~actions

let out port = Mods.make ~port ()

(* ------------------------------------------------------------------ *)
(* Flow                                                                *)

let test_flow_of_classifier () =
  let c =
    [
      { Classifier.pattern = Pattern.make ~dst_port:80 (); action = [ out 1 ] };
      { Classifier.pattern = Pattern.all; action = [] };
    ]
  in
  let flows = Flow.of_classifier c in
  check_int "two entries" 2 (List.length flows);
  let priorities = List.map (fun (f : Flow.t) -> f.priority) flows in
  check_bool "strictly descending" true (priorities = [ 65535; 65534 ]);
  check_bool "drop preserved" true (Flow.is_drop (List.nth flows 1));
  let low = Flow.of_classifier ~base_priority:10 c in
  check_bool "base priority respected" true
    (List.map (fun (f : Flow.t) -> f.priority) low = [ 10; 9 ])

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_priority_order () =
  let t = Table.create () in
  Table.install t (flow ~priority:10 [ out 1 ]);
  Table.install t (flow ~priority:20 ~pattern:(Pattern.make ~dst_port:80 ()) [ out 2 ]);
  (match Table.lookup t (Packet.make ~dst_port:80 ()) with
  | Some f -> check_int "high priority wins" 20 f.priority
  | None -> Alcotest.fail "no match");
  match Table.lookup t (Packet.make ~dst_port:22 ()) with
  | Some f -> check_int "fallback" 10 f.priority
  | None -> Alcotest.fail "no fallback match"

let test_table_add_overwrites () =
  (* OpenFlow ADD: equal priority and match replaces the entry. *)
  let t = Table.create () in
  Table.install t (flow ~priority:10 [ out 1 ]);
  Table.install t (flow ~priority:10 [ out 2 ]);
  check_int "one entry" 1 (Table.size t);
  match Table.lookup t (Packet.make ()) with
  | Some f -> check_bool "latest wins" true (f.actions = [ out 2 ])
  | None -> Alcotest.fail "no match"

let test_table_capacity () =
  let t = Table.create ~capacity:2 () in
  Table.install t (flow ~priority:1 [ out 1 ]);
  Table.install t (flow ~priority:2 [ out 2 ]);
  check_bool "full raises" true
    (try
       Table.install t (flow ~priority:3 [ out 3 ]);
       false
     with Table.Table_full -> true);
  (* Overwriting does not count against capacity. *)
  Table.install t (flow ~priority:2 [ out 9 ]);
  check_int "still two entries" 2 (Table.size t);
  check_int "capacity reported" 2 (Option.get (Table.capacity t))

let test_table_remove () =
  let t = Table.create () in
  let p80 = Pattern.make ~dst_port:80 () in
  Table.install t (flow ~priority:10 ~pattern:p80 [ out 1 ]);
  Table.install t (flow ~priority:20 [ out 2 ]);
  Table.remove t ~priority:10 ~pattern:p80;
  check_int "one left" 1 (Table.size t);
  let removed = Table.remove_where t (fun f -> f.priority = 20) in
  check_int "remove_where count" 1 removed;
  check_int "empty" 0 (Table.size t)

let test_table_hits () =
  let t = Table.create () in
  Table.install t (flow ~priority:10 [ out 1 ]);
  ignore (Table.lookup t (Packet.make ()));
  ignore (Table.lookup t (Packet.make ~dst_port:80 ()));
  check_int "hits counted" 2 (Table.hits t ~priority:10 ~pattern:Pattern.all);
  check_int "absent entry" 0 (Table.hits t ~priority:99 ~pattern:Pattern.all)

let test_table_clear () =
  let t = Table.create () in
  Table.install_all t [ flow [ out 1 ]; flow [ out 2 ] ];
  Table.clear t;
  check_int "cleared" 0 (Table.size t);
  check_bool "no match after clear" true (Table.lookup t (Packet.make ()) = None)

(* ------------------------------------------------------------------ *)
(* Switch                                                              *)

let test_switch_process_basic () =
  let sw = Switch.create () in
  Switch.install_classifier sw
    (Classifier.compile
       (Policy.if_ (Pred.dst_port 80) (Policy.fwd 2) (Policy.fwd 3)));
  let outs pkt = List.map (fun (p : Packet.t) -> p.port) (Switch.process sw pkt) in
  check_bool "port 80 -> 2" true (outs (Packet.make ~dst_port:80 ()) = [ 2 ]);
  check_bool "other -> 3" true (outs (Packet.make ~dst_port:22 ()) = [ 3 ])

let test_switch_no_match_drops () =
  let sw = Switch.create () in
  check_bool "empty table drops" true (Switch.process sw (Packet.make ()) = [])

let test_switch_multicast () =
  let sw = Switch.create () in
  Switch.install_classifier sw
    [ { Classifier.pattern = Pattern.all; action = [ out 1; out 2 ] } ];
  check_int "two outputs" 2 (List.length (Switch.process sw (Packet.make ())))

let test_switch_multi_table () =
  (* Stage 1 tags (no output), stage 2 forwards on the tag — the
     multi-stage FIB of Figure 2. *)
  let sw = Switch.create ~tables:2 () in
  let tag = Mac.of_int 0x020000000001 in
  Switch.install_classifier sw ~table:0
    [
      {
        Classifier.pattern = Pattern.make ~dst_ip:(Prefix.of_string "20.0.0.0/16") ();
        action = [ Mods.make ~dst_mac:tag () ];
      };
      { Classifier.pattern = Pattern.all; action = [] };
    ];
  Switch.install_classifier sw ~table:1
    [
      { Classifier.pattern = Pattern.make ~dst_mac:tag (); action = [ out 7 ] };
      { Classifier.pattern = Pattern.all; action = [] };
    ];
  let pkt = Packet.make ~dst_ip:(Ipv4.of_string "20.0.1.1") () in
  (match Switch.process sw pkt with
  | [ p ] ->
      check_int "forwarded by tag" 7 p.port;
      check_bool "tag applied" true (Mac.equal p.dst_mac tag)
  | _ -> Alcotest.fail "expected one output");
  check_bool "unmatched dropped in stage 2" true
    (Switch.process sw (Packet.make ~dst_ip:(Ipv4.of_string "99.0.0.1") ()) = [])

let test_switch_rule_count () =
  let sw = Switch.create ~tables:2 () in
  Switch.install_classifier sw ~table:0 Classifier.drop_all;
  Switch.install_classifier sw ~table:1 Classifier.id_all;
  check_int "rules across tables" 2 (Switch.rule_count sw);
  check_int "table count" 2 (Switch.table_count sw)

let test_switch_bad_table () =
  let sw = Switch.create () in
  Alcotest.check_raises "bad table id" (Invalid_argument "Switch.table: no table 3")
    (fun () -> ignore (Switch.table sw 3))

(* Property: a classifier installed on a switch behaves exactly like the
   classifier itself. *)

let addr x = Ipv4.of_int (0x0A000000 lor (x land 7))

let gen_packet =
  let open QCheck2.Gen in
  let* port = int_range 0 3 in
  let* dst_ip = map addr (int_range 0 7) in
  let* src_ip = map addr (int_range 0 7) in
  let* dst_port = oneofl [ 80; 443 ] in
  return (Packet.make ~port ~dst_ip ~src_ip ~dst_port ())

let gen_small_policy =
  let open QCheck2.Gen in
  let gen_pred =
    oneof
      [
        map Pred.dst_port (oneofl [ 80; 443 ]);
        map (fun x -> Pred.src_ip (Prefix.make (addr x) 31)) (int_range 0 7);
        map Pred.port (int_range 0 3);
      ]
  in
  let* p1 = gen_pred in
  let* p2 = gen_pred in
  let* a = int_range 0 3 in
  let* b = int_range 0 3 in
  return
    (Policy.if_ p1 (Policy.fwd a) (Policy.if_ p2 (Policy.fwd b) Policy.drop))

let prop_switch_matches_classifier =
  QCheck2.Test.make ~name:"switch process = classifier eval" ~count:1000
    QCheck2.Gen.(pair gen_small_policy gen_packet)
    (fun (pol, pkt) ->
      let c = Classifier.compile pol in
      let sw = Switch.create () in
      Switch.install_classifier sw c;
      Switch.process sw pkt = Classifier.eval c pkt)

(* ------------------------------------------------------------------ *)
(* Messages and the control channel                                    *)

let test_connection_flow_mods () =
  let sw = Switch.create () in
  let conn = Connection.create sw in
  let f1 = flow ~priority:10 [ out 1 ] in
  let f2 = flow ~priority:20 ~pattern:(Pattern.make ~dst_port:80 ()) [ out 2 ] in
  Connection.send conn (Message.add f1);
  Connection.send conn (Message.add ~cookie:7 f2);
  check_int "two applied" 2 (Connection.flow_mods_applied conn);
  check_int "installed" 2 (List.length (Connection.installed conn));
  Connection.send conn (Message.delete f1);
  check_int "one left" 1 (List.length (Connection.installed conn));
  (* Cookie-based bulk delete. *)
  Connection.send conn (Message.delete_cookie 7);
  check_int "empty after cookie delete" 0 (List.length (Connection.installed conn))

let test_connection_barrier_echo () =
  let conn = Connection.create (Switch.create ()) in
  Connection.send conn (Message.Barrier_request 42);
  Connection.send conn (Message.Echo_request 43);
  check_bool "barrier reply" true (Connection.recv conn = Some (Message.Barrier_reply 42));
  check_bool "echo reply" true (Connection.recv conn = Some (Message.Echo_reply 43));
  check_bool "queue drained" true (Connection.recv conn = None)

let test_connection_packet_in () =
  let conn = Connection.create (Switch.create ()) in
  let pkt = Packet.make ~dst_port:80 () in
  check_bool "miss drops" true (Connection.process conn pkt = []);
  (match Connection.recv conn with
  | Some (Message.Packet_in { packet; _ }) ->
      check_bool "miss reported" true (Packet.equal packet pkt)
  | _ -> Alcotest.fail "expected packet_in");
  (* Once a matching rule exists, no packet-in. *)
  Connection.send conn (Message.add (flow [ out 3 ]));
  check_int "forwarded" 1 (List.length (Connection.process conn pkt));
  check_int "no pending" 0 (Connection.pending conn)

let test_connection_sync_diff () =
  let conn = Connection.create (Switch.create ()) in
  let f priority port = flow ~priority [ out port ] in
  let mods = Connection.sync conn [ f 10 1; f 20 2; f 30 3 ] in
  check_int "initial install" 3 mods;
  (* Identical target: nothing to do. *)
  check_int "idempotent" 0 (Connection.sync conn [ f 10 1; f 20 2; f 30 3 ]);
  (* One changed action: a single ADD overwrites in place. *)
  check_int "single change" 1 (Connection.sync conn [ f 10 1; f 20 9; f 30 3 ]);
  (* Shrink. *)
  check_int "removal" 2 (Connection.sync conn [ f 30 3 ]);
  check_int "final table" 1 (List.length (Connection.installed conn))

let test_connection_sync_preserves_semantics () =
  let conn = Connection.create (Switch.create ()) in
  let c =
    Classifier.compile
      (Policy.if_ (Pred.dst_port 80) (Policy.fwd 2) (Policy.fwd 3))
  in
  ignore (Connection.sync conn (Flow.of_classifier c));
  let outs pkt =
    List.map (fun (p : Packet.t) -> p.port) (Connection.process conn pkt)
  in
  check_bool "web" true (outs (Packet.make ~dst_port:80 ()) = [ 2 ]);
  check_bool "other" true (outs (Packet.make ~dst_port:22 ()) = [ 3 ])

let test_connection_rejects_switch_messages () =
  let conn = Connection.create (Switch.create ()) in
  check_bool "reply rejected" true
    (try
       Connection.send conn (Message.Barrier_reply 1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sdx_openflow"
    [
      ("flow", [ Alcotest.test_case "of_classifier" `Quick test_flow_of_classifier ]);
      ( "table",
        [
          Alcotest.test_case "priority order" `Quick test_table_priority_order;
          Alcotest.test_case "add overwrites" `Quick test_table_add_overwrites;
          Alcotest.test_case "capacity" `Quick test_table_capacity;
          Alcotest.test_case "remove" `Quick test_table_remove;
          Alcotest.test_case "hits" `Quick test_table_hits;
          Alcotest.test_case "clear" `Quick test_table_clear;
        ] );
      ( "switch",
        [
          Alcotest.test_case "process" `Quick test_switch_process_basic;
          Alcotest.test_case "no match drops" `Quick test_switch_no_match_drops;
          Alcotest.test_case "multicast" `Quick test_switch_multicast;
          Alcotest.test_case "multi-table FIB" `Quick test_switch_multi_table;
          Alcotest.test_case "rule count" `Quick test_switch_rule_count;
          Alcotest.test_case "bad table" `Quick test_switch_bad_table;
        ]
        @ qsuite [ prop_switch_matches_classifier ] );
      ( "connection",
        [
          Alcotest.test_case "flow mods" `Quick test_connection_flow_mods;
          Alcotest.test_case "barrier/echo" `Quick test_connection_barrier_echo;
          Alcotest.test_case "packet in" `Quick test_connection_packet_in;
          Alcotest.test_case "sync diff" `Quick test_connection_sync_diff;
          Alcotest.test_case "sync semantics" `Quick
            test_connection_sync_preserves_semantics;
          Alcotest.test_case "rejects switch messages" `Quick
            test_connection_rejects_switch_messages;
        ] );
    ]
