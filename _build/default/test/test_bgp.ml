(* Tests for the BGP substrate: routes, the decision process, the route
   server, AS-path regular expressions, and session modeling. *)

open Sdx_net
open Sdx_bgp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let asn = Asn.of_int
let ip = Ipv4.of_string
let pfx = Prefix.of_string

let route ?(prefix = pfx "20.0.0.0/16") ?(next_hop = ip "10.0.0.1")
    ?(as_path = [ asn 100; asn 65000 ]) ?local_pref ?med ?origin
    ?(learned_from = asn 100) () =
  Route.make ~prefix ~next_hop ~as_path ?local_pref ?med ?origin ~learned_from ()

(* ------------------------------------------------------------------ *)
(* Route                                                               *)

let test_route_accessors () =
  let r = route ~as_path:[ asn 1; asn 2; asn 3 ] () in
  check_bool "origin as" true (Route.origin_as r = Some (asn 3));
  check_string "path string" "1 2 3" (Route.as_path_string r);
  check_bool "empty path origin" true
    (Route.origin_as (route ~as_path:[] ()) = None)

let test_route_prepend () =
  let r = Route.prepend (asn 9) (route ~as_path:[ asn 1 ] ()) in
  check_string "prepended" "9 1" (Route.as_path_string r)

let test_route_with_next_hop () =
  let r = Route.with_next_hop (ip "1.1.1.1") (route ()) in
  check_string "next hop" "1.1.1.1" (Ipv4.to_string r.next_hop)

(* ------------------------------------------------------------------ *)
(* Decision process                                                    *)

let test_decision_local_pref () =
  let lo = route ~local_pref:100 () in
  let hi = route ~local_pref:200 ~learned_from:(asn 200) () in
  check_bool "higher local pref wins" true (Decision.prefer hi lo > 0);
  check_bool "best" true (Decision.best [ lo; hi ] = Some hi)

let test_decision_as_path_length () =
  let short = route ~as_path:[ asn 1; asn 2 ] () in
  let long = route ~as_path:[ asn 1; asn 2; asn 3 ] ~learned_from:(asn 200) () in
  check_bool "shorter path wins" true (Decision.prefer short long > 0)

let test_decision_origin () =
  let igp = route ~origin:Route.Igp () in
  let egp = route ~origin:Route.Egp ~learned_from:(asn 200) () in
  let incomplete = route ~origin:Route.Incomplete ~learned_from:(asn 300) () in
  check_bool "igp over egp" true (Decision.prefer igp egp > 0);
  check_bool "egp over incomplete" true (Decision.prefer egp incomplete > 0)

let test_decision_med () =
  let lo_med = route ~med:5 () in
  let hi_med = route ~med:50 ~learned_from:(asn 200) () in
  check_bool "lower med wins" true (Decision.prefer lo_med hi_med > 0)

let test_decision_tiebreaks () =
  let a = route ~learned_from:(asn 100) () in
  let b = route ~learned_from:(asn 200) () in
  check_bool "lower neighbor asn wins" true (Decision.prefer a b > 0);
  let c = route ~next_hop:(ip "10.0.0.1") () in
  let d = route ~next_hop:(ip "10.0.0.2") () in
  check_bool "lower next hop wins" true (Decision.prefer c d > 0);
  check_int "identical routes tie" 0 (Decision.prefer a a)

let test_decision_priority_order () =
  (* Local pref beats a shorter path; path length beats origin. *)
  let pref_long = route ~local_pref:200 ~as_path:[ asn 1; asn 2; asn 3 ] () in
  let nopref_short = route ~as_path:[ asn 1 ] ~learned_from:(asn 200) () in
  check_bool "local pref first" true (Decision.prefer pref_long nopref_short > 0);
  let short_incomplete =
    route ~as_path:[ asn 1 ] ~origin:Route.Incomplete ()
  in
  let long_igp =
    route ~as_path:[ asn 1; asn 2 ] ~origin:Route.Igp ~learned_from:(asn 200) ()
  in
  check_bool "path length before origin" true
    (Decision.prefer short_incomplete long_igp > 0)

let test_decision_sort () =
  let a = route ~local_pref:300 () in
  let b = route ~local_pref:200 ~learned_from:(asn 200) () in
  let c = route ~local_pref:100 ~learned_from:(asn 300) () in
  check_bool "sorted best first" true (Decision.sort [ c; a; b ] = [ a; b; c ]);
  check_bool "best of empty" true (Decision.best [] = None)

let gen_route =
  let open QCheck2.Gen in
  let* local_pref = int_range 0 3 in
  let* path_len = int_range 1 4 in
  let* med = int_range 0 2 in
  let* origin = oneofl [ Route.Igp; Route.Egp; Route.Incomplete ] in
  let* from = int_range 1 5 in
  let* nh = int_range 1 5 in
  return
    (route ~local_pref ~med ~origin
       ~as_path:(List.init path_len (fun i -> asn (i + 1)))
       ~learned_from:(asn from)
       ~next_hop:(Ipv4.of_int nh) ())

let prop_prefer_antisymmetric =
  QCheck2.Test.make ~name:"prefer is antisymmetric" ~count:1000
    QCheck2.Gen.(pair gen_route gen_route)
    (fun (a, b) ->
      let ab = Decision.prefer a b and ba = Decision.prefer b a in
      (ab > 0 && ba < 0) || (ab < 0 && ba > 0) || (ab = 0 && ba = 0))

let prop_prefer_transitive =
  QCheck2.Test.make ~name:"prefer is transitive" ~count:1000
    QCheck2.Gen.(triple gen_route gen_route gen_route)
    (fun (a, b, c) ->
      (not (Decision.prefer a b >= 0 && Decision.prefer b c >= 0))
      || Decision.prefer a c >= 0)

let prop_best_is_max =
  QCheck2.Test.make ~name:"best is preferred over every candidate" ~count:500
    QCheck2.Gen.(list_size (int_range 1 8) gen_route)
    (fun routes ->
      match Decision.best routes with
      | None -> false
      | Some b -> List.for_all (fun r -> Decision.prefer b r >= 0) routes)

(* ------------------------------------------------------------------ *)
(* Route server                                                        *)

let peers = [ asn 1; asn 2; asn 3 ]

let announce server ~peer ~prefix ?(path_len = 2) ?(nh = "10.0.0.1") () =
  (* Paths continue into far-away ASes so they never collide with the
     other exchange participants (which would trip loop prevention). *)
  Route_server.apply server
    (Update.announce
       (Route.make ~prefix ~next_hop:(ip nh)
          ~as_path:
            (peer :: List.init (path_len - 1) (fun i -> asn (65_000 + i)))
          ~learned_from:peer ()))

let test_server_basic_announce () =
  let server = Route_server.create peers in
  let change = announce server ~peer:(asn 1) ~prefix:(pfx "20.0.0.0/16") () in
  check_bool "prefix" true (Prefix.equal change.prefix (pfx "20.0.0.0/16"));
  (* Everyone except the advertiser sees a new best route. *)
  check_int "best changed for 2 receivers" 2 (List.length change.best_changed_for);
  check_bool "advertiser unchanged" false
    (List.exists (Asn.equal (asn 1)) change.best_changed_for);
  check_bool "best for 2" true
    (Option.is_some (Route_server.best server ~receiver:(asn 2) (pfx "20.0.0.0/16")));
  check_bool "no route back to advertiser" true
    (Route_server.best server ~receiver:(asn 1) (pfx "20.0.0.0/16") = None)

let test_server_best_selection () =
  let server = Route_server.create peers in
  ignore (announce server ~peer:(asn 1) ~prefix:(pfx "20.0.0.0/16") ~path_len:3 ());
  ignore
    (announce server ~peer:(asn 2) ~prefix:(pfx "20.0.0.0/16") ~path_len:2
       ~nh:"10.0.0.2" ());
  (match Route_server.best server ~receiver:(asn 3) (pfx "20.0.0.0/16") with
  | Some r -> check_bool "shorter path chosen" true (Asn.equal r.learned_from (asn 2))
  | None -> Alcotest.fail "no best route");
  (* The winner's own best is the other candidate. *)
  match Route_server.best server ~receiver:(asn 2) (pfx "20.0.0.0/16") with
  | Some r -> check_bool "advertiser sees other" true (Asn.equal r.learned_from (asn 1))
  | None -> Alcotest.fail "no best for advertiser"

let test_server_withdraw () =
  let server = Route_server.create peers in
  ignore (announce server ~peer:(asn 1) ~prefix:(pfx "20.0.0.0/16") ());
  let change =
    Route_server.apply server (Update.withdraw ~peer:(asn 1) (pfx "20.0.0.0/16"))
  in
  check_int "best changed" 2 (List.length change.best_changed_for);
  check_bool "gone" true
    (Route_server.best server ~receiver:(asn 2) (pfx "20.0.0.0/16") = None);
  check_int "no prefixes left" 0 (Route_server.prefix_count server)

let test_server_noop_change () =
  let server = Route_server.create peers in
  ignore (announce server ~peer:(asn 1) ~prefix:(pfx "20.0.0.0/16") ~path_len:2 ());
  (* A worse route appearing does not change anyone's best. *)
  let change =
    announce server ~peer:(asn 2) ~prefix:(pfx "20.0.0.0/16") ~path_len:4
      ~nh:"10.0.0.9" ()
  in
  (* ...except the original advertiser, who previously had no route. *)
  check_bool "only advertiser 1 gains a route" true
    (change.best_changed_for = [ asn 1 ])

let test_server_export_policy () =
  (* AS 1 does not export to AS 3. *)
  let export ~advertiser ~receiver =
    not (Asn.equal advertiser (asn 1) && Asn.equal receiver (asn 3))
  in
  let server = Route_server.create ~export peers in
  ignore (announce server ~peer:(asn 1) ~prefix:(pfx "20.0.0.0/16") ());
  check_bool "2 sees it" true
    (Option.is_some (Route_server.best server ~receiver:(asn 2) (pfx "20.0.0.0/16")));
  check_bool "3 filtered" true
    (Route_server.best server ~receiver:(asn 3) (pfx "20.0.0.0/16") = None);
  check_bool "reachable respects export" true
    (Route_server.reachable_prefixes server ~receiver:(asn 3) ~via:(asn 1) = []);
  check_int "reachable for 2" 1
    (List.length (Route_server.reachable_prefixes server ~receiver:(asn 2) ~via:(asn 1)))

let test_server_feasible () =
  let server = Route_server.create peers in
  ignore (announce server ~peer:(asn 1) ~prefix:(pfx "20.0.0.0/16") ~path_len:3 ());
  ignore
    (announce server ~peer:(asn 2) ~prefix:(pfx "20.0.0.0/16") ~path_len:2
       ~nh:"10.0.0.2" ());
  let feasible = Route_server.feasible server ~receiver:(asn 3) (pfx "20.0.0.0/16") in
  check_int "two feasible routes" 2 (List.length feasible);
  check_bool "best first" true
    (Asn.equal (List.hd feasible).learned_from (asn 2))

let test_server_unknown_peer () =
  let server = Route_server.create peers in
  Alcotest.check_raises "unknown participant"
    (Invalid_argument "Route_server: unknown participant AS99") (fun () ->
      ignore (announce server ~peer:(asn 99) ~prefix:(pfx "20.0.0.0/16") ()))

let test_server_loop_prevention () =
  let server = Route_server.create peers in
  (* AS 1 re-announces a route whose path already traverses AS 2. *)
  ignore
    (Route_server.apply server
       (Update.announce
          (Route.make ~prefix:(pfx "20.0.0.0/16") ~next_hop:(ip "10.0.0.1")
             ~as_path:[ asn 1; asn 2; asn 65000 ] ~learned_from:(asn 1) ())));
  check_bool "loop_free predicate" false
    (Route_server.loop_free
       (route ~as_path:[ asn 1; asn 2; asn 65000 ] ())
       ~receiver:(asn 2));
  (* AS 2 must never receive it; AS 3 may. *)
  check_bool "looped route withheld" true
    (Route_server.best server ~receiver:(asn 2) (pfx "20.0.0.0/16") = None);
  check_bool "clean receiver gets it" true
    (Option.is_some (Route_server.best server ~receiver:(asn 3) (pfx "20.0.0.0/16")));
  check_bool "reachability agrees" true
    (Route_server.reachable_prefixes server ~receiver:(asn 2) ~via:(asn 1) = [])

let test_server_lookup_best () =
  let server = Route_server.create peers in
  ignore (announce server ~peer:(asn 1) ~prefix:(pfx "20.0.0.0/16") ());
  ignore
    (announce server ~peer:(asn 2) ~prefix:(pfx "20.0.1.0/24") ~nh:"10.0.0.2" ());
  (match Route_server.lookup_best server ~receiver:(asn 3) (ip "20.0.1.9") with
  | Some (prefix, r) ->
      check_bool "most specific" true (Prefix.equal prefix (pfx "20.0.1.0/24"));
      check_bool "from 2" true (Asn.equal r.learned_from (asn 2))
  | None -> Alcotest.fail "lookup failed");
  check_bool "miss" true
    (Route_server.lookup_best server ~receiver:(asn 3) (ip "99.0.0.1") = None);
  (* The /24's advertiser falls back to the covering /16. *)
  match Route_server.lookup_best server ~receiver:(asn 2) (ip "20.0.1.9") with
  | Some (prefix, _) ->
      check_bool "covering prefix" true (Prefix.equal prefix (pfx "20.0.0.0/16"))
  | None -> Alcotest.fail "fallback lookup failed"

let test_server_fold_and_prefixes () =
  let server = Route_server.create peers in
  ignore (announce server ~peer:(asn 1) ~prefix:(pfx "20.0.0.0/16") ());
  ignore (announce server ~peer:(asn 1) ~prefix:(pfx "21.0.0.0/16") ());
  check_int "all prefixes" 2 (List.length (Route_server.all_prefixes server));
  check_int "prefixes of peer" 2 (List.length (Route_server.prefixes_of server (asn 1)));
  let n =
    Route_server.fold_best server ~receiver:(asn 2) (fun _ _ acc -> acc + 1) 0
  in
  check_int "fold over local rib" 2 n;
  (* The advertiser's own local RIB is empty. *)
  let n1 =
    Route_server.fold_best server ~receiver:(asn 1) (fun _ _ acc -> acc + 1) 0
  in
  check_int "advertiser rib empty" 0 n1

let test_server_burst () =
  let server = Route_server.create peers in
  let updates =
    List.init 5 (fun i ->
        Update.announce
          (Route.make
             ~prefix:(Prefix.make (Ipv4.of_int (0x14000000 + (i * 65536))) 16)
             ~next_hop:(ip "10.0.0.1")
             ~as_path:[ asn 1; asn 65000 ]
             ~learned_from:(asn 1) ()))
  in
  let changes = Route_server.apply_burst server updates in
  check_int "five changes" 5 (List.length changes);
  check_int "five prefixes" 5 (Route_server.prefix_count server)

(* ------------------------------------------------------------------ *)
(* AS-path regular expressions                                         *)

let test_as_path_regex () =
  (* The paper's YouTube example: all routes whose path ends at 43515. *)
  let re = As_path_regex.compile ".*43515$" in
  let youtube = route ~as_path:[ asn 3356; asn 43515 ] () in
  let other = route ~as_path:[ asn 3356; asn 15169 ] () in
  check_bool "match" true (As_path_regex.matches re youtube);
  check_bool "no match" false (As_path_regex.matches re other);
  check_int "filter" 1 (List.length (As_path_regex.filter re [ youtube; other ]));
  check_string "source kept" ".*43515$" (As_path_regex.source re)

let test_as_path_regex_anchors () =
  let re = As_path_regex.compile "^100 " in
  check_bool "anchored start" true
    (As_path_regex.matches re (route ~as_path:[ asn 100; asn 2 ] ()));
  check_bool "not mid-path" false
    (As_path_regex.matches re (route ~as_path:[ asn 2; asn 100; asn 3 ] ()))

let test_as_path_regex_invalid () =
  check_bool "invalid raises" true
    (try
       ignore (As_path_regex.compile "(unclosed");
       false
     with Invalid_argument _ -> true)

let test_server_filter_as_path () =
  let server = Route_server.create peers in
  ignore
    (Route_server.apply server
       (Update.announce
          (Route.make ~prefix:(pfx "20.0.0.0/16") ~next_hop:(ip "10.0.0.1")
             ~as_path:[ asn 1; asn 43515 ] ~learned_from:(asn 1) ())));
  ignore
    (Route_server.apply server
       (Update.announce
          (Route.make ~prefix:(pfx "21.0.0.0/16") ~next_hop:(ip "10.0.0.1")
             ~as_path:[ asn 1; asn 15169 ] ~learned_from:(asn 1) ())));
  let re = As_path_regex.compile ".*43515$" in
  let matches = Route_server.filter_prefixes_by_as_path server ~receiver:(asn 2) re in
  check_bool "only youtube prefix" true (matches = [ pfx "20.0.0.0/16" ])

let test_server_filter_community () =
  let server = Route_server.create peers in
  let announce_with prefix communities =
    ignore
      (Route_server.apply server
         (Update.announce
            (Route.make ~prefix ~next_hop:(ip "10.0.0.1")
               ~as_path:[ asn 1; asn 65000 ] ~communities ~learned_from:(asn 1) ())))
  in
  announce_with (pfx "20.0.0.0/16") [ (65000, 666) ];
  announce_with (pfx "21.0.0.0/16") [ (65000, 100); (65000, 666) ];
  announce_with (pfx "22.0.0.0/16") [];
  let tagged =
    Route_server.filter_prefixes_by_community server ~receiver:(asn 2) (65000, 666)
  in
  check_int "two tagged prefixes" 2 (List.length tagged);
  check_bool "untagged excluded" false (List.mem (pfx "22.0.0.0/16") tagged)

(* ------------------------------------------------------------------ *)
(* Peer: wire + FSM glued over a byte stream                           *)

let mk_peer ~local_asn ~local_id ~remote_asn =
  Peer.create
    ~local:{ Wire.asn = local_asn; hold_time = 90; bgp_id = ip local_id }
    ~peer_asn:remote_asn

(* Shuttle bytes between two endpoints until both go quiet, optionally
   fragmenting every transmission into 1-byte pieces. *)
let shuttle ?(fragment = false) a b =
  let deliver dst data =
    if fragment then
      Bytes.iter
        (fun ch ->
          match Peer.feed dst (Bytes.make 1 ch) with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e)
        data
    else
      match Peer.feed dst data with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e
  in
  let rec go guard =
    if guard = 0 then Alcotest.fail "session negotiation did not converge";
    let out_a = Peer.pending_output a and out_b = Peer.pending_output b in
    if out_a = [] && out_b = [] then ()
    else begin
      List.iter (deliver b) out_a;
      List.iter (deliver a) out_b;
      go (guard - 1)
    end
  in
  go 10

let test_peer_establishment () =
  let a = mk_peer ~local_asn:(asn 64512) ~local_id:"10.0.0.1" ~remote_asn:(asn 2) in
  let b = mk_peer ~local_asn:(asn 2) ~local_id:"10.0.0.2" ~remote_asn:(asn 64512) in
  Peer.connect a;
  Peer.connect b;
  shuttle a b;
  check_bool "a established" true (Peer.state a = Fsm.Established);
  check_bool "b established" true (Peer.state b = Fsm.Established);
  (match Peer.remote_open a with
  | Some o -> check_bool "a learned b's asn" true (Asn.equal o.asn (asn 2))
  | None -> Alcotest.fail "no remote open");
  check_bool "no flush during bring-up" false (Peer.flush_requested a)

let test_peer_update_exchange_fragmented () =
  let a = mk_peer ~local_asn:(asn 64512) ~local_id:"10.0.0.1" ~remote_asn:(asn 2) in
  let b = mk_peer ~local_asn:(asn 2) ~local_id:"10.0.0.2" ~remote_asn:(asn 64512) in
  Peer.connect a;
  Peer.connect b;
  shuttle ~fragment:true a b;
  check_bool "established over fragmented stream" true
    (Peer.state a = Fsm.Established && Peer.state b = Fsm.Established);
  (* b announces a route; a receives it attributed to b's ASN. *)
  let r = route ~prefix:(pfx "20.0.0.0/16") ~learned_from:(asn 2) () in
  Peer.send_update b (Update.announce r);
  let received = ref [] in
  List.iter
    (fun data ->
      (* one byte at a time *)
      Bytes.iter
        (fun ch ->
          match Peer.feed a (Bytes.make 1 ch) with
          | Ok us -> received := !received @ us
          | Error e -> Alcotest.fail e)
        data)
    (Peer.pending_output b);
  match !received with
  | [ Update.Announce r' ] ->
      check_bool "prefix" true (Prefix.equal r'.prefix (pfx "20.0.0.0/16"));
      check_bool "attributed to peer" true (Asn.equal r'.learned_from (asn 2))
  | _ -> Alcotest.fail "expected exactly one announce"

let test_peer_hold_expiry_flushes () =
  let a = mk_peer ~local_asn:(asn 64512) ~local_id:"10.0.0.1" ~remote_asn:(asn 2) in
  let b = mk_peer ~local_asn:(asn 2) ~local_id:"10.0.0.2" ~remote_asn:(asn 64512) in
  Peer.connect a;
  Peer.connect b;
  shuttle a b;
  Peer.hold_expired a;
  check_bool "torn down" true (Peer.state a = Fsm.Idle);
  check_bool "flush requested" true (Peer.flush_requested a);
  check_bool "flag clears on read" false (Peer.flush_requested a);
  (* The notification reaches b and tears it down too. *)
  List.iter
    (fun data -> ignore (Result.get_ok (Peer.feed b data)))
    (Peer.pending_output a);
  check_bool "b idle after notification" true (Peer.state b = Fsm.Idle);
  check_bool "b flushes too" true (Peer.flush_requested b)

let test_peer_garbage_tears_down () =
  let a = mk_peer ~local_asn:(asn 64512) ~local_id:"10.0.0.1" ~remote_asn:(asn 2) in
  Peer.connect a;
  check_bool "garbage rejected" true
    (Result.is_error (Peer.feed a (Bytes.make 19 '\000')));
  check_bool "idle after garbage" true (Peer.state a = Fsm.Idle)

let test_peer_update_before_establishment () =
  let a = mk_peer ~local_asn:(asn 64512) ~local_id:"10.0.0.1" ~remote_asn:(asn 2) in
  Peer.connect a;
  (* a is in OpenSent; an UPDATE now is an FSM error. *)
  let raw =
    Wire.encode (Wire.of_update (Update.announce (route ~learned_from:(asn 2) ())))
  in
  (match Peer.feed a raw with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "update accepted before establishment"
  | Error e -> Alcotest.fail e);
  check_bool "torn down" true (Peer.state a = Fsm.Idle);
  (* The FSM-error notification is queued behind the initial OPEN. *)
  let out = Peer.pending_output a in
  check_bool "notification sent" true
    (List.exists
       (fun raw ->
         match Wire.decode raw with
         | Ok (Wire.Notification { code = 5; _ }) -> true
         | _ -> false)
       out)

(* ------------------------------------------------------------------ *)
(* Peering policies and route-server communities                       *)

let rs_asn = asn 6695 (* DE-CIX's route-server AS, for flavor *)

let test_peering_matrices () =
  let m = Peering.bilateral [ (asn 1, asn 2) ] in
  check_bool "pair allowed" true (m ~advertiser:(asn 1) ~receiver:(asn 2));
  check_bool "pair symmetric" true (m ~advertiser:(asn 2) ~receiver:(asn 1));
  check_bool "others denied" false (m ~advertiser:(asn 1) ~receiver:(asn 3));
  let d = Peering.deny_pairs [ (asn 1, asn 3) ] in
  check_bool "denied pair" false (d ~advertiser:(asn 3) ~receiver:(asn 1));
  check_bool "others open" true (d ~advertiser:(asn 1) ~receiver:(asn 2))

let test_peering_communities () =
  let filter = Peering.community_filter ~rs_asn in
  let plain = route () in
  check_bool "untagged exports" true (filter plain ~receiver:(asn 2));
  let no_exp = Peering.tag plain [ Peering.no_export ] in
  check_bool "no-export blocks" false (filter no_exp ~receiver:(asn 2));
  check_bool "blocked_by_no_export" true (Peering.blocked_by_no_export no_exp);
  let skip3 = Peering.tag plain [ Peering.do_not_announce_to (asn 3) ] in
  check_bool "do-not-announce blocks target" false (filter skip3 ~receiver:(asn 3));
  check_bool "do-not-announce passes others" true (filter skip3 ~receiver:(asn 2));
  let only2 = Peering.tag plain [ Peering.announce_only_to ~rs_asn (asn 2) ] in
  check_bool "announce-only passes target" true (filter only2 ~receiver:(asn 2));
  check_bool "announce-only blocks others" false (filter only2 ~receiver:(asn 3))

let test_peering_through_route_server () =
  (* The SDX route server honors the same community conventions a
     conventional route server would. *)
  let server =
    Route_server.create ~route_filter:(Peering.community_filter ~rs_asn) peers
  in
  let announce_tagged prefix communities =
    ignore
      (Route_server.apply server
         (Update.announce
            (Route.make ~prefix ~next_hop:(ip "10.0.0.1")
               ~as_path:[ asn 1; asn 65000 ] ~communities ~learned_from:(asn 1) ())))
  in
  announce_tagged (pfx "20.0.0.0/16") [ Peering.do_not_announce_to (asn 3) ];
  check_bool "2 gets the route" true
    (Option.is_some (Route_server.best server ~receiver:(asn 2) (pfx "20.0.0.0/16")));
  check_bool "3 is filtered" true
    (Route_server.best server ~receiver:(asn 3) (pfx "20.0.0.0/16") = None);
  check_bool "reachability matches" true
    (Route_server.reachable_prefixes server ~receiver:(asn 3) ~via:(asn 1) = []);
  announce_tagged (pfx "21.0.0.0/16") [ Peering.no_export ];
  check_bool "no-export hidden from everyone" true
    (Route_server.best server ~receiver:(asn 2) (pfx "21.0.0.0/16") = None)

(* ------------------------------------------------------------------ *)
(* RPKI                                                                *)

let test_rpki_validation () =
  let table = Rpki.create () in
  Rpki.add_roa table ~prefix:(pfx "74.125.0.0/16") ~max_length:24 (asn 15169);
  check_int "one roa" 1 (Rpki.roa_count table);
  (* Exact-authorized origination. *)
  check_bool "valid" true
    (Rpki.validate_origin table ~prefix:(pfx "74.125.1.0/24") (asn 15169) = Rpki.Valid);
  (* Wrong AS: covered but unauthorized. *)
  check_bool "invalid origin" true
    (Rpki.validate_origin table ~prefix:(pfx "74.125.1.0/24") (asn 666) = Rpki.Invalid);
  (* Too specific for the ROA's max length. *)
  check_bool "too specific" true
    (Rpki.validate_origin table ~prefix:(pfx "74.125.1.0/25") (asn 15169) = Rpki.Invalid);
  (* Unrelated space: no ROA at all. *)
  check_bool "not found" true
    (Rpki.validate_origin table ~prefix:(pfx "8.8.8.0/24") (asn 15169) = Rpki.Not_found)

let test_rpki_route_validation () =
  let table = Rpki.create () in
  Rpki.add_roa table ~prefix:(pfx "74.125.0.0/16") ~max_length:24 (asn 15169);
  let good =
    route ~prefix:(pfx "74.125.1.0/24") ~as_path:[ asn 3356; asn 15169 ] ()
  in
  let hijack =
    route ~prefix:(pfx "74.125.1.0/24") ~as_path:[ asn 3356; asn 666 ] ()
  in
  check_bool "good route valid" true (Rpki.validate table good = Rpki.Valid);
  check_bool "hijack invalid" true (Rpki.validate table hijack = Rpki.Invalid);
  check_bool "empty path over covered space invalid" true
    (Rpki.validate table (route ~prefix:(pfx "74.125.1.0/24") ~as_path:[] ())
    = Rpki.Invalid)

let test_rpki_multiple_roas () =
  (* Dual-homed prefix: two ROAs authorize two different origins. *)
  let table = Rpki.create () in
  Rpki.add_roa table ~prefix:(pfx "74.125.0.0/16") (asn 15169);
  Rpki.add_roa table ~prefix:(pfx "74.125.0.0/16") (asn 36040);
  check_bool "first origin valid" true
    (Rpki.validate_origin table ~prefix:(pfx "74.125.0.0/16") (asn 15169) = Rpki.Valid);
  check_bool "second origin valid" true
    (Rpki.validate_origin table ~prefix:(pfx "74.125.0.0/16") (asn 36040) = Rpki.Valid);
  (* Default max_length = prefix length: subnets are invalid. *)
  check_bool "subnet invalid" true
    (Rpki.validate_origin table ~prefix:(pfx "74.125.1.0/24") (asn 15169) = Rpki.Invalid)

let test_rpki_bad_max_length () =
  let table = Rpki.create () in
  check_bool "max_length below prefix" true
    (try
       Rpki.add_roa table ~prefix:(pfx "10.0.0.0/16") ~max_length:8 (asn 1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Wire format (RFC 4271)                                              *)

let test_wire_open_roundtrip () =
  let msg =
    Wire.Open { asn = asn 64512; hold_time = 90; bgp_id = ip "10.0.0.1" }
  in
  match Wire.decode (Wire.encode msg) with
  | Ok (Wire.Open o) ->
      check_bool "asn" true (Asn.equal o.asn (asn 64512));
      check_int "hold" 90 o.hold_time;
      check_bool "id" true (Ipv4.equal o.bgp_id (ip "10.0.0.1"))
  | _ -> Alcotest.fail "open roundtrip failed"

let test_wire_keepalive_notification () =
  check_bool "keepalive" true (Wire.decode (Wire.encode Wire.Keepalive) = Ok Wire.Keepalive);
  check_bool "keepalive is 19 bytes" true
    (Bytes.length (Wire.encode Wire.Keepalive) = 19);
  match Wire.decode (Wire.encode (Wire.Notification { code = 6; subcode = 2 })) with
  | Ok (Wire.Notification { code; subcode }) ->
      check_int "code" 6 code;
      check_int "subcode" 2 subcode
  | _ -> Alcotest.fail "notification roundtrip failed"

let test_wire_update_roundtrip () =
  let r =
    Route.make ~prefix:(pfx "20.0.0.0/16") ~next_hop:(ip "10.0.0.1")
      ~as_path:[ asn 100; asn 65000 ] ~local_pref:150 ~med:7
      ~origin:Route.Egp
      ~communities:[ (65535, 65281); (100, 200) ]
      ~learned_from:(asn 100) ()
  in
  let msg = Wire.of_update (Update.announce r) in
  match Wire.decode (Wire.encode msg) with
  | Ok decoded -> (
      match Wire.to_updates ~peer:(asn 100) decoded with
      | [ Update.Announce r' ] ->
          check_bool "prefix" true (Prefix.equal r'.prefix r.prefix);
          check_bool "next hop" true (Ipv4.equal r'.next_hop r.next_hop);
          check_bool "as path" true (r'.as_path = r.as_path);
          check_int "local pref" 150 r'.local_pref;
          check_int "med" 7 r'.med;
          check_bool "origin" true (r'.origin = Route.Egp);
          check_bool "communities" true (r'.communities = r.communities);
          check_bool "learned from session peer" true
            (Asn.equal r'.learned_from (asn 100))
      | _ -> Alcotest.fail "expected one announce")
  | Error e -> Alcotest.fail e

let test_wire_withdraw_roundtrip () =
  let msg = Wire.of_update (Update.withdraw ~peer:(asn 100) (pfx "20.0.0.0/16")) in
  match Wire.decode (Wire.encode msg) with
  | Ok decoded -> (
      match Wire.to_updates ~peer:(asn 100) decoded with
      | [ Update.Withdraw { prefix; peer } ] ->
          check_bool "prefix" true (Prefix.equal prefix (pfx "20.0.0.0/16"));
          check_bool "peer" true (Asn.equal peer (asn 100))
      | _ -> Alcotest.fail "expected one withdraw")
  | Error e -> Alcotest.fail e

let test_wire_as_trans () =
  (* A 4-byte AS number falls back to AS_TRANS on the wire. *)
  let msg =
    Wire.Open { asn = asn 400_000; hold_time = 90; bgp_id = ip "10.0.0.1" }
  in
  match Wire.decode (Wire.encode msg) with
  | Ok (Wire.Open o) -> check_bool "as-trans" true (Asn.equal o.asn Wire.as_trans)
  | _ -> Alcotest.fail "as-trans roundtrip failed"

let test_wire_rejects_garbage () =
  check_bool "bad marker" true
    (Result.is_error (Wire.decode (Bytes.make 19 '\000')));
  check_bool "short" true (Result.is_error (Wire.decode (Bytes.make 5 '\xff')));
  let truncated = Wire.encode Wire.Keepalive in
  Bytes.set_uint8 truncated 17 99 (* lie about the length *);
  check_bool "length mismatch" true (Result.is_error (Wire.decode truncated))

let gen_wire_route =
  let open QCheck2.Gen in
  let* network = int_range 0 0xFFFF_FFFF in
  let* len = int_range 0 32 in
  let* path_len = int_range 1 5 in
  let* path_start = int_range 1 60_000 in
  let* local_pref = int_range 0 1000 in
  let* med = int_range 0 1000 in
  let* origin = oneofl [ Route.Igp; Route.Egp; Route.Incomplete ] in
  let* n_comm = int_range 0 3 in
  let* nh = int_range 0 0xFFFF_FFFF in
  return
    (Route.make
       ~prefix:(Prefix.make (Ipv4.of_int network) len)
       ~next_hop:(Ipv4.of_int nh)
       ~as_path:(List.init path_len (fun i -> asn (path_start + i)))
       ~local_pref ~med ~origin
       ~communities:(List.init n_comm (fun i -> (i, i * 7)))
       ~learned_from:(asn 77) ())

let prop_wire_update_roundtrip =
  QCheck2.Test.make ~name:"wire update roundtrip preserves the route" ~count:500
    gen_wire_route
    (fun r ->
      match Wire.decode (Wire.encode (Wire.of_update (Update.announce r))) with
      | Ok msg -> (
          match Wire.to_updates ~peer:(asn 77) msg with
          | [ Update.Announce r' ] -> Route.equal r' r
          | _ -> false)
      | Error _ -> false)

let prop_wire_never_crashes =
  QCheck2.Test.make ~name:"wire decode never crashes on noise" ~count:500
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      match Wire.decode (Bytes.of_string s) with
      | Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Session FSM                                                         *)

let open_msg = { Wire.asn = asn 1; hold_time = 90; bgp_id = ip "10.0.0.1" }

let drive fsm events = List.iter (fun e -> ignore (Fsm.handle fsm e)) events

let establish fsm =
  drive fsm
    [ Fsm.Manual_start; Fsm.Tcp_connected; Fsm.Open_received open_msg;
      Fsm.Keepalive_received ]

let test_fsm_happy_path () =
  let fsm = Fsm.create () in
  check_bool "starts idle" true (Fsm.state fsm = Fsm.Idle);
  check_bool "start connects" true
    (Fsm.handle fsm Fsm.Manual_start = [ Fsm.Start_connection ]);
  check_bool "tcp sends open" true
    (Fsm.handle fsm Fsm.Tcp_connected = [ Fsm.Send_open ]);
  check_bool "open confirms" true
    (Fsm.handle fsm (Fsm.Open_received open_msg) = [ Fsm.Send_keepalive ]);
  check_bool "keepalive establishes" true (Fsm.handle fsm Fsm.Keepalive_received = []);
  check_bool "established" true (Fsm.state fsm = Fsm.Established);
  check_bool "updates keep it up" true
    (Fsm.handle fsm Fsm.Update_received = [] && Fsm.state fsm = Fsm.Established);
  check_bool "keepalive timer sends keepalive" true
    (Fsm.handle fsm Fsm.Keepalive_timer_expired = [ Fsm.Send_keepalive ])

let test_fsm_hold_timer_flushes () =
  let fsm = Fsm.create () in
  establish fsm;
  let actions = Fsm.handle fsm Fsm.Hold_timer_expired in
  check_bool "notify + drop + flush" true
    (actions
    = [ Fsm.Send_notification { code = 4; subcode = 0 };
        Fsm.Drop_connection; Fsm.Flush_routes ]);
  check_bool "idle after hold expiry" true (Fsm.state fsm = Fsm.Idle)

let test_fsm_notification_teardown () =
  let fsm = Fsm.create () in
  establish fsm;
  let actions = Fsm.handle fsm Fsm.Notification_received in
  check_bool "drops and flushes" true
    (actions = [ Fsm.Drop_connection; Fsm.Flush_routes ]);
  (* Before establishment, no routes to flush. *)
  let fsm2 = Fsm.create () in
  drive fsm2 [ Fsm.Manual_start; Fsm.Tcp_connected ];
  check_bool "no flush pre-establishment" true
    (Fsm.handle fsm2 Fsm.Notification_received = [ Fsm.Drop_connection ])

let test_fsm_connect_retry () =
  let fsm = Fsm.create () in
  ignore (Fsm.handle fsm Fsm.Manual_start);
  ignore (Fsm.handle fsm Fsm.Tcp_failed);
  check_bool "active after tcp failure" true (Fsm.state fsm = Fsm.Active);
  check_bool "retry reconnects" true
    (Fsm.handle fsm Fsm.Connect_retry_expired = [ Fsm.Start_connection ]);
  check_int "retries counted" 2 (Fsm.connect_retries fsm)

let test_fsm_error_handling () =
  let fsm = Fsm.create () in
  drive fsm [ Fsm.Manual_start; Fsm.Tcp_connected ];
  (* A keepalive in OpenSent is an FSM error (code 5). *)
  let actions = Fsm.handle fsm Fsm.Keepalive_received in
  check_bool "fsm error notification" true
    (actions
    = [ Fsm.Send_notification { code = 5; subcode = 0 }; Fsm.Drop_connection ]);
  check_bool "back to idle" true (Fsm.state fsm = Fsm.Idle);
  (* Stray events in Idle are ignored. *)
  check_bool "idle ignores" true (Fsm.handle fsm Fsm.Keepalive_received = [])

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)

let test_session_reset () =
  let s = Session.create ~peer:(asn 1) in
  check_bool "starts idle" true (Session.state s = Session.Idle);
  Session.establish s;
  check_bool "established" true (Session.state s = Session.Established);
  let withdrawals = Session.reset s [ pfx "20.0.0.0/16"; pfx "21.0.0.0/16" ] in
  check_int "withdraw all" 2 (List.length withdrawals);
  check_bool "idle again" true (Session.state s = Session.Idle);
  check_bool "withdraws from peer" true
    (List.for_all (fun u -> Asn.equal (Update.peer u) (asn 1)) withdrawals)

let test_session_table_transfer () =
  let s = Session.create ~peer:(asn 2) in
  let transferred = Session.table_transfer s [ route () ] in
  check_bool "re-established" true (Session.state s = Session.Established);
  check_bool "announces as peer" true
    (match transferred with
    | [ Update.Announce r ] -> Asn.equal r.learned_from (asn 2)
    | _ -> false)

let test_transfer_burst_heuristic () =
  let updates =
    List.init 95 (fun i ->
        Update.announce
          (route ~prefix:(Prefix.make (Ipv4.of_int (0x14000000 + (i * 256))) 24) ()))
  in
  check_bool "full transfer detected" true
    (Session.is_transfer_burst ~updates ~table_size:100);
  check_bool "small burst not a transfer" false
    (Session.is_transfer_burst ~updates:[ List.hd updates ] ~table_size:100);
  check_bool "empty table" false
    (Session.is_transfer_burst ~updates ~table_size:0)

(* ------------------------------------------------------------------ *)
(* Pretty-printers (rendering used by the CLI and logs)                *)

let test_pretty_printers () =
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let r = route ~as_path:[ asn 100; asn 200 ] ~local_pref:150 () in
  let s = Format.asprintf "%a" Route.pp r in
  check_bool "route pp has prefix" true (contains "20.0.0.0/16" s);
  check_bool "route pp has path" true (contains "[100 200]" s);
  check_bool "route pp has pref" true (contains "lp=150" s);
  let s = Format.asprintf "%a" Update.pp (Update.announce r) in
  check_bool "announce pp" true (contains "announce" s);
  let s = Format.asprintf "%a" Update.pp (Update.withdraw ~peer:(asn 1) (pfx "9.0.0.0/8")) in
  check_bool "withdraw pp" true (contains "withdraw 9.0.0.0/8" s);
  let s = Format.asprintf "%a" Wire.pp (Wire.Notification { code = 6; subcode = 1 }) in
  check_bool "wire pp" true (contains "NOTIFICATION 6/1" s);
  check_bool "fsm state pp" true
    (Format.asprintf "%a" Fsm.pp_state Fsm.Open_confirm = "OpenConfirm");
  check_bool "validity pp" true
    (Format.asprintf "%a" Rpki.pp_validity Rpki.Invalid = "invalid");
  check_bool "origin in route pp" true
    (contains "EGP" (Format.asprintf "%a" Route.pp (route ~origin:Route.Egp ())))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sdx_bgp"
    [
      ( "route",
        [
          Alcotest.test_case "accessors" `Quick test_route_accessors;
          Alcotest.test_case "prepend" `Quick test_route_prepend;
          Alcotest.test_case "with_next_hop" `Quick test_route_with_next_hop;
        ] );
      ( "decision",
        [
          Alcotest.test_case "local pref" `Quick test_decision_local_pref;
          Alcotest.test_case "as path length" `Quick test_decision_as_path_length;
          Alcotest.test_case "origin" `Quick test_decision_origin;
          Alcotest.test_case "med" `Quick test_decision_med;
          Alcotest.test_case "tiebreaks" `Quick test_decision_tiebreaks;
          Alcotest.test_case "priority order" `Quick test_decision_priority_order;
          Alcotest.test_case "sort" `Quick test_decision_sort;
        ]
        @ qsuite [ prop_prefer_antisymmetric; prop_prefer_transitive; prop_best_is_max ]
      );
      ( "route_server",
        [
          Alcotest.test_case "announce" `Quick test_server_basic_announce;
          Alcotest.test_case "best selection" `Quick test_server_best_selection;
          Alcotest.test_case "withdraw" `Quick test_server_withdraw;
          Alcotest.test_case "no-op change" `Quick test_server_noop_change;
          Alcotest.test_case "export policy" `Quick test_server_export_policy;
          Alcotest.test_case "feasible routes" `Quick test_server_feasible;
          Alcotest.test_case "unknown peer" `Quick test_server_unknown_peer;
          Alcotest.test_case "loop prevention" `Quick test_server_loop_prevention;
          Alcotest.test_case "lookup_best" `Quick test_server_lookup_best;
          Alcotest.test_case "fold/prefixes" `Quick test_server_fold_and_prefixes;
          Alcotest.test_case "burst" `Quick test_server_burst;
        ] );
      ( "as_path_regex",
        [
          Alcotest.test_case "youtube example" `Quick test_as_path_regex;
          Alcotest.test_case "anchors" `Quick test_as_path_regex_anchors;
          Alcotest.test_case "invalid" `Quick test_as_path_regex_invalid;
          Alcotest.test_case "server filter" `Quick test_server_filter_as_path;
          Alcotest.test_case "community filter" `Quick test_server_filter_community;
        ] );
      ( "peer",
        [
          Alcotest.test_case "establishment" `Quick test_peer_establishment;
          Alcotest.test_case "fragmented update exchange" `Quick
            test_peer_update_exchange_fragmented;
          Alcotest.test_case "hold expiry flushes" `Quick test_peer_hold_expiry_flushes;
          Alcotest.test_case "garbage tears down" `Quick test_peer_garbage_tears_down;
          Alcotest.test_case "update before establishment" `Quick
            test_peer_update_before_establishment;
        ] );
      ( "peering",
        [
          Alcotest.test_case "matrices" `Quick test_peering_matrices;
          Alcotest.test_case "communities" `Quick test_peering_communities;
          Alcotest.test_case "through route server" `Quick
            test_peering_through_route_server;
        ] );
      ( "rpki",
        [
          Alcotest.test_case "validation" `Quick test_rpki_validation;
          Alcotest.test_case "route validation" `Quick test_rpki_route_validation;
          Alcotest.test_case "multiple roas" `Quick test_rpki_multiple_roas;
          Alcotest.test_case "bad max length" `Quick test_rpki_bad_max_length;
        ] );
      ( "wire",
        [
          Alcotest.test_case "open roundtrip" `Quick test_wire_open_roundtrip;
          Alcotest.test_case "keepalive/notification" `Quick
            test_wire_keepalive_notification;
          Alcotest.test_case "update roundtrip" `Quick test_wire_update_roundtrip;
          Alcotest.test_case "withdraw roundtrip" `Quick test_wire_withdraw_roundtrip;
          Alcotest.test_case "as-trans" `Quick test_wire_as_trans;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
        ]
        @ qsuite [ prop_wire_update_roundtrip; prop_wire_never_crashes ] );
      ( "fsm",
        [
          Alcotest.test_case "happy path" `Quick test_fsm_happy_path;
          Alcotest.test_case "hold timer flushes" `Quick test_fsm_hold_timer_flushes;
          Alcotest.test_case "notification teardown" `Quick
            test_fsm_notification_teardown;
          Alcotest.test_case "connect retry" `Quick test_fsm_connect_retry;
          Alcotest.test_case "error handling" `Quick test_fsm_error_handling;
        ] );
      ("pp", [ Alcotest.test_case "pretty printers" `Quick test_pretty_printers ]);
      ( "session",
        [
          Alcotest.test_case "reset" `Quick test_session_reset;
          Alcotest.test_case "table transfer" `Quick test_session_table_transfer;
          Alcotest.test_case "transfer heuristic" `Quick test_transfer_burst_heuristic;
        ] );
    ]
