(* Unit and property tests for the sdx_net substrate: addresses,
   prefixes, MACs, the prefix trie, and packets. *)

open Sdx_net

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Ipv4                                                                *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> check_string "roundtrip" s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "192.0.2.1"; "10.0.0.1"; "1.2.3.4" ]

let test_ipv4_of_octets () =
  check_int "octets" 0xC0000201 (Ipv4.to_int (Ipv4.of_octets 192 0 2 1));
  Alcotest.check_raises "octet range" (Invalid_argument "Ipv4.of_octets: octet 256 out of range")
    (fun () -> ignore (Ipv4.of_octets 256 0 0 0))

let test_ipv4_parse_errors () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true
        (Option.is_none (Ipv4.of_string_opt s)))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "1.2.3.-4"; "1..2.3" ]

let test_ipv4_succ_wraps () =
  check_int "succ" 1 (Ipv4.to_int (Ipv4.succ Ipv4.zero));
  check_int "wrap" 0 (Ipv4.to_int (Ipv4.succ Ipv4.broadcast))

let test_ipv4_order () =
  check_bool "lt" true (Ipv4.compare (Ipv4.of_string "1.0.0.0") (Ipv4.of_string "2.0.0.0") < 0);
  check_bool "eq" true (Ipv4.equal (Ipv4.of_string "9.8.7.6") (Ipv4.of_string "9.8.7.6"))

let test_ipv4_bounds () =
  Alcotest.check_raises "negative" (Invalid_argument "Ipv4.of_int: -1 out of range")
    (fun () -> ignore (Ipv4.of_int (-1)));
  Alcotest.check_raises "too big"
    (Invalid_argument "Ipv4.of_int: 4294967296 out of range") (fun () ->
      ignore (Ipv4.of_int 0x1_0000_0000))

let prop_ipv4_string_roundtrip =
  QCheck2.Test.make ~name:"ipv4 string roundtrip" ~count:500
    (QCheck2.Gen.int_range 0 0xFFFF_FFFF)
    (fun n ->
      let a = Ipv4.of_int n in
      Ipv4.equal a (Ipv4.of_string (Ipv4.to_string a)))

(* ------------------------------------------------------------------ *)
(* Prefix                                                              *)

let p = Prefix.of_string

let test_prefix_normalization () =
  check_string "host bits cleared" "10.1.0.0/16" (Prefix.to_string (p "10.1.2.3/16"));
  check_bool "normalized equal" true (Prefix.equal (p "10.1.2.3/16") (p "10.1.9.9/16"))

let test_prefix_parse () =
  check_string "bare address is /32" "1.2.3.4/32" (Prefix.to_string (p "1.2.3.4"));
  check_bool "bad length" true (Option.is_none (Prefix.of_string_opt "1.2.3.4/33"));
  check_bool "bad addr" true (Option.is_none (Prefix.of_string_opt "1.2.3/8"))

let test_prefix_mem () =
  check_bool "inside" true (Prefix.mem (Ipv4.of_string "10.1.2.3") (p "10.0.0.0/8"));
  check_bool "outside" false (Prefix.mem (Ipv4.of_string "11.0.0.0") (p "10.0.0.0/8"));
  check_bool "default matches all" true (Prefix.mem (Ipv4.of_string "200.1.2.3") Prefix.default)

let test_prefix_subset () =
  check_bool "proper subset" true (Prefix.subset (p "10.1.0.0/16") (p "10.0.0.0/8"));
  check_bool "not subset" false (Prefix.subset (p "10.0.0.0/8") (p "10.1.0.0/16"));
  check_bool "reflexive" true (Prefix.subset (p "10.0.0.0/8") (p "10.0.0.0/8"));
  check_bool "disjoint" false (Prefix.subset (p "10.0.0.0/8") (p "11.0.0.0/8"))

let test_prefix_inter () =
  check_bool "inter is more specific" true
    (Prefix.inter (p "10.0.0.0/8") (p "10.1.0.0/16") = Some (p "10.1.0.0/16"));
  check_bool "disjoint inter" true
    (Prefix.inter (p "10.0.0.0/8") (p "11.0.0.0/8") = None)

let test_prefix_split () =
  let lo, hi = Prefix.split (p "10.0.0.0/8") in
  check_string "lo" "10.0.0.0/9" (Prefix.to_string lo);
  check_string "hi" "10.128.0.0/9" (Prefix.to_string hi);
  Alcotest.check_raises "cannot split /32"
    (Invalid_argument "Prefix.split: cannot split a /32") (fun () ->
      ignore (Prefix.split (p "1.2.3.4/32")))

let test_prefix_first_last () =
  check_string "first" "10.0.0.0" (Ipv4.to_string (Prefix.first (p "10.0.0.0/8")));
  check_string "last" "10.255.255.255" (Ipv4.to_string (Prefix.last (p "10.0.0.0/8")))

let test_prefix_host () =
  check_string "host 1" "10.0.0.1" (Ipv4.to_string (Prefix.host (p "10.0.0.0/24") 1));
  Alcotest.check_raises "host out of range"
    (Invalid_argument "Prefix.host: index 256 out of range for 10.0.0.0/24")
    (fun () -> ignore (Prefix.host (p "10.0.0.0/24") 256))

let test_prefix_order () =
  let sorted =
    List.sort Prefix.compare [ p "10.0.0.0/16"; p "10.0.0.0/8"; p "9.0.0.0/8" ]
  in
  check_string "order" "9.0.0.0/8 10.0.0.0/8 10.0.0.0/16"
    (String.concat " " (List.map Prefix.to_string sorted))

let gen_prefix =
  QCheck2.Gen.(
    map2
      (fun addr len -> Prefix.make (Ipv4.of_int addr) len)
      (int_range 0 0xFFFF_FFFF) (int_range 0 32))

let gen_addr = QCheck2.Gen.map Ipv4.of_int (QCheck2.Gen.int_range 0 0xFFFF_FFFF)

let prop_subset_means_member_subset =
  QCheck2.Test.make ~name:"prefix subset implies membership subset" ~count:1000
    QCheck2.Gen.(triple gen_prefix gen_prefix gen_addr)
    (fun (a, b, addr) ->
      (not (Prefix.subset a b)) || (not (Prefix.mem addr a)) || Prefix.mem addr b)

let prop_inter_membership =
  QCheck2.Test.make ~name:"prefix inter = conjunction of membership" ~count:1000
    QCheck2.Gen.(triple gen_prefix gen_prefix gen_addr)
    (fun (a, b, addr) ->
      let both = Prefix.mem addr a && Prefix.mem addr b in
      match Prefix.inter a b with
      | Some i -> Prefix.mem addr i = both
      | None -> not both)

let prop_split_partitions =
  QCheck2.Test.make ~name:"prefix split partitions the parent" ~count:1000
    QCheck2.Gen.(
      pair
        (map2 (fun a l -> Prefix.make (Ipv4.of_int a) l) (int_range 0 0xFFFF_FFFF)
           (int_range 0 31))
        gen_addr)
    (fun (parent, addr) ->
      let lo, hi = Prefix.split parent in
      let in_parent = Prefix.mem addr parent in
      let in_children = Prefix.mem addr lo || Prefix.mem addr hi in
      let in_both = Prefix.mem addr lo && Prefix.mem addr hi in
      in_parent = in_children && not in_both)

(* ------------------------------------------------------------------ *)
(* Mac                                                                 *)

let test_mac_roundtrip () =
  List.iter
    (fun s -> check_string "roundtrip" s (Mac.to_string (Mac.of_string s)))
    [ "00:00:00:00:00:00"; "ff:ff:ff:ff:ff:ff"; "0a:1b:2c:3d:4e:5f" ]

let test_mac_parse_errors () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true
        (Option.is_none (Mac.of_string_opt s)))
    [ ""; "00:00:00:00:00"; "00:00:00:00:00:00:00"; "0g:00:00:00:00:00"; "0:0:0:0:0:0" ]

let test_mac_bounds () =
  check_int "max" 0xFFFF_FFFF_FFFF (Mac.to_int Mac.broadcast);
  Alcotest.check_raises "too big"
    (Invalid_argument "Mac.of_int: 281474976710656 out of range") (fun () ->
      ignore (Mac.of_int 0x1_0000_0000_0000))

(* ------------------------------------------------------------------ *)
(* Prefix_trie                                                         *)

let test_trie_add_find () =
  let t = Prefix_trie.empty |> Prefix_trie.add (p "10.0.0.0/8") "a" in
  check_bool "found" true (Prefix_trie.find_opt (p "10.0.0.0/8") t = Some "a");
  check_bool "not found" true (Prefix_trie.find_opt (p "10.0.0.0/16") t = None);
  check_bool "replace" true
    (Prefix_trie.find_opt (p "10.0.0.0/8") (Prefix_trie.add (p "10.0.0.0/8") "b" t)
    = Some "b")

let test_trie_remove () =
  let t =
    Prefix_trie.of_list [ (p "10.0.0.0/8", 1); (p "10.1.0.0/16", 2) ]
  in
  let t = Prefix_trie.remove (p "10.0.0.0/8") t in
  check_int "cardinal after remove" 1 (Prefix_trie.cardinal t);
  check_bool "other kept" true (Prefix_trie.mem (p "10.1.0.0/16") t);
  check_bool "remove absent is noop" true
    (Prefix_trie.cardinal (Prefix_trie.remove (p "99.0.0.0/8") t) = 1)

let test_trie_longest_match () =
  let t =
    Prefix_trie.of_list
      [ (p "10.0.0.0/8", "coarse"); (p "10.1.0.0/16", "fine"); (p "0.0.0.0/0", "default") ]
  in
  let lm addr =
    match Prefix_trie.longest_match (Ipv4.of_string addr) t with
    | Some (_, v) -> v
    | None -> "none"
  in
  check_string "fine wins" "fine" (lm "10.1.2.3");
  check_string "coarse" "coarse" (lm "10.2.0.1");
  check_string "default" "default" (lm "192.168.0.1")

let test_trie_matches_order () =
  let t =
    Prefix_trie.of_list [ (p "10.0.0.0/8", 8); (p "10.1.0.0/16", 16); (p "0.0.0.0/0", 0) ]
  in
  let lens =
    List.map (fun (pre, _) -> Prefix.length pre)
      (Prefix_trie.matches (Ipv4.of_string "10.1.2.3") t)
  in
  check_bool "most specific first" true (lens = [ 16; 8; 0 ])

let test_trie_update () =
  let t = Prefix_trie.empty in
  let t = Prefix_trie.update (p "10.0.0.0/8") (fun _ -> Some 1) t in
  let t = Prefix_trie.update (p "10.0.0.0/8") (Option.map succ) t in
  check_bool "updated" true (Prefix_trie.find_opt (p "10.0.0.0/8") t = Some 2);
  let t = Prefix_trie.update (p "10.0.0.0/8") (fun _ -> None) t in
  check_bool "removed" true (Prefix_trie.is_empty t)

let test_trie_bindings_sorted () =
  let ps = [ p "10.0.0.0/16"; p "9.0.0.0/8"; p "10.0.0.0/8"; p "200.0.0.0/5" ] in
  let t = Prefix_trie.of_list (List.map (fun x -> (x, ())) ps) in
  let got = List.map fst (Prefix_trie.bindings t) in
  check_bool "sorted" true (got = List.sort Prefix.compare ps)

let gen_prefix_list = QCheck2.Gen.(list_size (int_range 0 40) gen_prefix)

let prop_trie_longest_match_vs_naive =
  QCheck2.Test.make ~name:"trie longest match agrees with naive scan" ~count:500
    QCheck2.Gen.(pair gen_prefix_list gen_addr)
    (fun (prefixes, addr) ->
      let t = Prefix_trie.of_list (List.map (fun x -> (x, x)) prefixes) in
      let naive =
        List.fold_left
          (fun best pre ->
            if Prefix.mem addr pre then
              match best with
              | Some b when Prefix.length b >= Prefix.length pre -> best
              | _ -> Some pre
            else best)
          None prefixes
      in
      match (Prefix_trie.longest_match addr t, naive) with
      | None, None -> true
      | Some (got, _), Some want -> Prefix.length got = Prefix.length want
      | _ -> false)

let prop_trie_cardinal =
  QCheck2.Test.make ~name:"trie cardinal = distinct inserted prefixes" ~count:500
    gen_prefix_list
    (fun prefixes ->
      let t = Prefix_trie.of_list (List.map (fun x -> (x, ())) prefixes) in
      Prefix_trie.cardinal t = List.length (List.sort_uniq Prefix.compare prefixes))

(* ------------------------------------------------------------------ *)
(* Packet                                                              *)

let test_packet_defaults () =
  let pkt = Packet.make () in
  check_int "eth ipv4" Packet.ethertype_ipv4 pkt.eth_type;
  check_int "tcp" Packet.proto_tcp pkt.proto;
  check_int "port" 0 pkt.port

let test_packet_equality () =
  let a = Packet.make ~dst_port:80 () and b = Packet.make ~dst_port:80 () in
  check_bool "equal" true (Packet.equal a b);
  check_bool "set dedup" true
    (Packet.Set.cardinal (Packet.Set.of_list [ a; b ]) = 1)

(* ------------------------------------------------------------------ *)
(* Aggregate                                                           *)

let test_aggregate_merges_siblings () =
  check_bool "two /25 -> /24" true
    (Aggregate.minimize [ p "10.0.0.0/25"; p "10.0.0.128/25" ] = [ p "10.0.0.0/24" ]);
  (* Four /26 chain-merge to a /24. *)
  check_bool "four /26 -> /24" true
    (Aggregate.minimize
       [ p "10.0.0.0/26"; p "10.0.0.64/26"; p "10.0.0.128/26"; p "10.0.0.192/26" ]
    = [ p "10.0.0.0/24" ])

let test_aggregate_prunes_contained () =
  check_bool "subset dropped" true
    (Aggregate.minimize [ p "10.0.0.0/8"; p "10.1.0.0/16" ] = [ p "10.0.0.0/8" ]);
  check_bool "duplicate dropped" true
    (Aggregate.minimize [ p "10.0.0.0/8"; p "10.0.0.0/8" ] = [ p "10.0.0.0/8" ])

let test_aggregate_noncontiguous_stay () =
  (* The paper's point: non-contiguous blocks cannot aggregate. *)
  let ps = [ p "10.0.0.0/24"; p "10.0.2.0/24"; p "192.168.0.0/24" ] in
  check_int "nothing merges" 3 (List.length (Aggregate.minimize ps))

let test_aggregate_merge_then_swallow () =
  (* Sibling merge produces a parent that swallows a third member. *)
  let ps = [ p "10.0.0.0/25"; p "10.0.0.128/25"; p "10.0.0.64/26" ] in
  check_bool "swallowed" true (Aggregate.minimize ps = [ p "10.0.0.0/24" ]);
  check_bool "covers_same" true (Aggregate.covers_same ps [ p "10.0.0.0/24" ]);
  check_bool "covers_same rejects" false
    (Aggregate.covers_same ps [ p "10.0.0.0/25" ])

let prop_aggregate_preserves_membership =
  QCheck2.Test.make ~name:"aggregation preserves the covered address set"
    ~count:500
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 12)
           (map2
              (fun x len -> Prefix.make (Ipv4.of_int (x lsl 20)) len)
              (int_range 0 64) (int_range 8 16)))
        gen_addr)
    (fun (prefixes, addr) ->
      let before = List.exists (Prefix.mem addr) prefixes in
      let after = List.exists (Prefix.mem addr) (Aggregate.minimize prefixes) in
      before = after)

let prop_aggregate_never_grows =
  QCheck2.Test.make ~name:"aggregation never grows the set" ~count:500
    QCheck2.Gen.(
      list_size (int_range 0 12)
        (map2
           (fun x len -> Prefix.make (Ipv4.of_int (x lsl 24)) len)
           (int_range 0 32) (int_range 4 10)))
    (fun prefixes ->
      List.length (Aggregate.minimize prefixes)
      <= List.length (List.sort_uniq Prefix.compare prefixes))

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let sample_packet ?(proto = Packet.proto_tcp) () =
  Packet.make ~port:3
    ~src_mac:(Mac.of_string "aa:bb:cc:dd:ee:01")
    ~dst_mac:(Mac.of_string "02:00:00:00:00:07")
    ~src_ip:(Ipv4.of_string "10.1.2.3")
    ~dst_ip:(Ipv4.of_string "20.0.1.9")
    ~proto ~src_port:43210 ~dst_port:80 ()

let test_codec_roundtrip_tcp () =
  let p = sample_packet () in
  let frame = Codec.to_bytes p in
  check_int "frame length" (Codec.frame_length p) (Bytes.length frame);
  check_int "tcp frame bytes" 54 (Bytes.length frame);
  match Codec.of_bytes ~port:3 frame with
  | Ok p' -> check_bool "lossless" true (Packet.equal p p')
  | Error e -> Alcotest.fail e

let test_codec_roundtrip_udp () =
  let p = sample_packet ~proto:Packet.proto_udp () in
  let frame = Codec.to_bytes p in
  check_int "udp frame bytes" 42 (Bytes.length frame);
  match Codec.of_bytes ~port:3 frame with
  | Ok p' -> check_bool "lossless" true (Packet.equal p p')
  | Error e -> Alcotest.fail e

let test_codec_checksum_detects_corruption () =
  let frame = Codec.to_bytes (sample_packet ()) in
  (* Flip a bit in the IPv4 destination address. *)
  Bytes.set_uint8 frame 30 (Bytes.get_uint8 frame 30 lxor 0x01);
  check_bool "corruption detected" true
    (match Codec.of_bytes frame with
    | Error "bad IPv4 header checksum" -> true
    | _ -> false)

let test_codec_truncation () =
  let frame = Codec.to_bytes (sample_packet ()) in
  check_bool "short ethernet" true
    (Result.is_error (Codec.of_bytes (Bytes.sub frame 0 10)));
  check_bool "short ip" true
    (Result.is_error (Codec.of_bytes (Bytes.sub frame 0 20)));
  check_bool "short tcp" true
    (Result.is_error (Codec.of_bytes (Bytes.sub frame 0 40)))

let test_codec_non_ip () =
  let p =
    Packet.make ~eth_type:Packet.ethertype_arp
      ~src_mac:(Mac.of_string "aa:bb:cc:dd:ee:01")
      ~dst_mac:Mac.broadcast ~proto:0 ()
  in
  let frame = Codec.to_bytes p in
  check_int "header only" 14 (Bytes.length frame);
  match Codec.of_bytes frame with
  | Ok p' ->
      check_int "ethertype preserved" Packet.ethertype_arp p'.eth_type;
      check_bool "macs preserved" true (Mac.equal p'.dst_mac Mac.broadcast)
  | Error e -> Alcotest.fail e

let gen_codec_packet =
  let open QCheck2.Gen in
  let* src_mac = map Mac.of_int (int_range 0 0xFFFFFF) in
  let* dst_mac = map Mac.of_int (int_range 0 0xFFFFFF) in
  let* src_ip = map Ipv4.of_int (int_range 0 0xFFFF_FFFF) in
  let* dst_ip = map Ipv4.of_int (int_range 0 0xFFFF_FFFF) in
  let* proto = oneofl [ Packet.proto_tcp; Packet.proto_udp ] in
  let* src_port = int_range 0 0xFFFF in
  let* dst_port = int_range 0 0xFFFF in
  return
    (Packet.make ~src_mac ~dst_mac ~src_ip ~dst_ip ~proto ~src_port ~dst_port ())

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrip is lossless" ~count:1000
    gen_codec_packet
    (fun p ->
      match Codec.of_bytes (Codec.to_bytes p) with
      | Ok p' -> Packet.equal p p'
      | Error _ -> false)

let prop_codec_rejects_noise =
  QCheck2.Test.make ~name:"codec never crashes on noise" ~count:500
    QCheck2.Gen.(string_size (int_range 0 80))
    (fun s ->
      match Codec.of_bytes (Bytes.of_string s) with
      | Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sdx_net"
    [
      ( "ipv4",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "of_octets" `Quick test_ipv4_of_octets;
          Alcotest.test_case "parse errors" `Quick test_ipv4_parse_errors;
          Alcotest.test_case "succ wraps" `Quick test_ipv4_succ_wraps;
          Alcotest.test_case "order" `Quick test_ipv4_order;
          Alcotest.test_case "bounds" `Quick test_ipv4_bounds;
        ]
        @ qsuite [ prop_ipv4_string_roundtrip ] );
      ( "prefix",
        [
          Alcotest.test_case "normalization" `Quick test_prefix_normalization;
          Alcotest.test_case "parse" `Quick test_prefix_parse;
          Alcotest.test_case "mem" `Quick test_prefix_mem;
          Alcotest.test_case "subset" `Quick test_prefix_subset;
          Alcotest.test_case "inter" `Quick test_prefix_inter;
          Alcotest.test_case "split" `Quick test_prefix_split;
          Alcotest.test_case "first/last" `Quick test_prefix_first_last;
          Alcotest.test_case "host" `Quick test_prefix_host;
          Alcotest.test_case "order" `Quick test_prefix_order;
        ]
        @ qsuite
            [
              prop_subset_means_member_subset;
              prop_inter_membership;
              prop_split_partitions;
            ] );
      ( "mac",
        [
          Alcotest.test_case "roundtrip" `Quick test_mac_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_mac_parse_errors;
          Alcotest.test_case "bounds" `Quick test_mac_bounds;
        ] );
      ( "prefix_trie",
        [
          Alcotest.test_case "add/find" `Quick test_trie_add_find;
          Alcotest.test_case "remove" `Quick test_trie_remove;
          Alcotest.test_case "longest match" `Quick test_trie_longest_match;
          Alcotest.test_case "matches order" `Quick test_trie_matches_order;
          Alcotest.test_case "update" `Quick test_trie_update;
          Alcotest.test_case "bindings sorted" `Quick test_trie_bindings_sorted;
        ]
        @ qsuite [ prop_trie_longest_match_vs_naive; prop_trie_cardinal ] );
      ( "packet",
        [
          Alcotest.test_case "defaults" `Quick test_packet_defaults;
          Alcotest.test_case "equality" `Quick test_packet_equality;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "merges siblings" `Quick test_aggregate_merges_siblings;
          Alcotest.test_case "prunes contained" `Quick test_aggregate_prunes_contained;
          Alcotest.test_case "non-contiguous stay" `Quick
            test_aggregate_noncontiguous_stay;
          Alcotest.test_case "merge then swallow" `Quick
            test_aggregate_merge_then_swallow;
        ]
        @ qsuite [ prop_aggregate_preserves_membership; prop_aggregate_never_grows ]
      );
      ( "codec",
        [
          Alcotest.test_case "tcp roundtrip" `Quick test_codec_roundtrip_tcp;
          Alcotest.test_case "udp roundtrip" `Quick test_codec_roundtrip_udp;
          Alcotest.test_case "checksum detects corruption" `Quick
            test_codec_checksum_detects_corruption;
          Alcotest.test_case "truncation" `Quick test_codec_truncation;
          Alcotest.test_case "non-ip frame" `Quick test_codec_non_ip;
        ]
        @ qsuite [ prop_codec_roundtrip; prop_codec_rejects_noise ] );
    ]
