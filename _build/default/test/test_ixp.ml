(* Tests for the workload generators: seeded randomness, participant
   populations, the synthetic routing table, §6.1 workloads, and the
   Table 1 trace model. *)

open Sdx_net
open Sdx_bgp
open Sdx_ixp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  check_bool "same seed same sequence" true (seq a = seq b);
  let c = Rng.create ~seed:8 in
  check_bool "different seed differs" false (seq (Rng.create ~seed:7) = seq c)

let test_rng_sample () =
  let rng = Rng.create ~seed:1 in
  let l = List.init 10 Fun.id in
  let s = Rng.sample rng l 4 in
  check_int "sample size" 4 (List.length s);
  check_int "distinct" 4 (List.length (List.sort_uniq compare s));
  check_int "sample larger than list" 10 (List.length (Rng.sample rng l 50))

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:2 in
  let l = List.init 50 Fun.id in
  check_bool "same elements" true (List.sort compare (Rng.shuffle rng l) = l)

let test_rng_pareto_bound () =
  let rng = Rng.create ~seed:3 in
  check_bool "pareto >= xmin" true
    (List.for_all
       (fun _ -> Rng.pareto rng ~xmin:4.0 ~alpha:1.3 >= 4.0)
       (List.init 200 Fun.id))

let test_rng_exponential_positive () =
  let rng = Rng.create ~seed:4 in
  check_bool "exponential >= 0" true
    (List.for_all (fun _ -> Rng.exponential rng ~mean:10.0 >= 0.0)
       (List.init 200 Fun.id))

let test_rng_bool_bias () =
  let rng = Rng.create ~seed:5 in
  let hits =
    List.length (List.filter Fun.id (List.init 2000 (fun _ -> Rng.bool rng ~p:0.75)))
  in
  check_bool "bernoulli near p" true (hits > 1350 && hits < 1650)

(* ------------------------------------------------------------------ *)
(* Population                                                          *)

let test_population_counts () =
  let rng = Rng.create ~seed:11 in
  let specs = Population.generate rng ~participants:100 ~prefixes:5000 () in
  check_int "participant count" 100 (List.length specs);
  let total =
    List.fold_left (fun n (s : Population.spec) -> n + s.prefix_count) 0 specs
  in
  check_bool "prefix total near target" true (abs (total - 5000) < 100);
  check_bool "everyone announces" true
    (List.for_all (fun (s : Population.spec) -> s.prefix_count >= 1) specs);
  check_bool "descending" true
    (let counts = List.map (fun (s : Population.spec) -> s.prefix_count) specs in
     List.sort (fun a b -> compare b a) counts = counts)

let test_population_skew () =
  let rng = Rng.create ~seed:12 in
  let specs = Population.generate rng ~participants:300 ~prefixes:50_000 () in
  check_bool "top 1% announce a lot" true
    (Population.top_share specs ~fraction:0.01 > 0.3);
  check_bool "bottom 90% announce little" true
    (Population.bottom_share specs ~fraction:0.9 < 0.15)

let test_population_kinds_and_ports () =
  let rng = Rng.create ~seed:13 in
  let specs = Population.generate rng ~participants:100 ~prefixes:1000 () in
  let count kind = List.length (Population.by_kind specs kind) in
  check_int "eyeballs 40%" 40 (count Population.Eyeball);
  check_int "transit 20%" 20 (count Population.Transit);
  check_int "content 40%" 40 (count Population.Content);
  let multi =
    List.length (List.filter (fun (s : Population.spec) -> s.port_count = 2) specs)
  in
  check_bool "some multi-port" true (multi > 0 && multi < 35);
  check_bool "distinct asns" true
    (List.length
       (List.sort_uniq Asn.compare (List.map (fun (s : Population.spec) -> s.asn) specs))
    = 100)

(* ------------------------------------------------------------------ *)
(* Prefixes                                                            *)

let test_prefixes_disjoint () =
  let table = Prefixes.table 500 in
  check_int "count" 500 (List.length table);
  (* Spot-check pairwise disjointness on a sample. *)
  let arr = Array.of_list table in
  let rng = Rng.create ~seed:14 in
  for _ = 1 to 500 do
    let i = Rng.int rng 500 and j = Rng.int rng 500 in
    if i <> j then
      check_bool "disjoint" false (Prefix.overlaps arr.(i) arr.(j))
  done

let test_prefixes_deterministic () =
  check_bool "nth stable" true (Prefix.equal (Prefixes.nth 17) (Prefixes.nth 17));
  check_bool "host inside" true
    (Prefix.mem (Prefixes.host_in (Prefixes.nth 3)) (Prefixes.nth 3));
  check_bool "length mix" true
    (List.sort_uniq Int.compare (List.map Prefix.length (Prefixes.table 16))
    = [ 22; 23; 24 ])

let test_prefixes_out_of_range () =
  check_bool "negative" true
    (try
       ignore (Prefixes.nth (-1));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let small_workload ?(seed = 21) () =
  let rng = Rng.create ~seed in
  Workload.build rng ~participants:20 ~prefixes:200 ()

let test_workload_builds () =
  let w = small_workload () in
  check_int "participants" 20
    (List.length (Sdx_core.Config.participants w.config));
  check_int "universe covers table" 200 (List.length w.universe);
  let server = Sdx_core.Config.server w.config in
  check_int "all prefixes announced" 200 (Route_server.prefix_count server)

let test_workload_policies_installed () =
  let w = small_workload () in
  let with_outbound =
    List.filter
      (fun (p : Sdx_core.Participant.t) -> p.outbound <> [])
      (Sdx_core.Config.participants w.config)
  in
  let with_inbound =
    List.filter
      (fun (p : Sdx_core.Participant.t) -> p.inbound <> [])
      (Sdx_core.Config.participants w.config)
  in
  check_bool "some outbound policies" true (with_outbound <> []);
  check_bool "some inbound policies" true (with_inbound <> []);
  let no_pol =
    Workload.build (Rng.create ~seed:21) ~participants:20 ~prefixes:200
      ~with_policies:false ()
  in
  check_bool "policies can be disabled" true
    (List.for_all
       (fun (p : Sdx_core.Participant.t) -> p.outbound = [] && p.inbound = [])
       (Sdx_core.Config.participants no_pol.config))

let test_workload_outbound_targets_are_participants () =
  let w = small_workload () in
  let asns =
    List.map (fun (p : Sdx_core.Participant.t) -> p.asn)
      (Sdx_core.Config.participants w.config)
  in
  List.iter
    (fun (p : Sdx_core.Participant.t) ->
      List.iter
        (fun peer -> check_bool "peer exists" true (List.exists (Asn.equal peer) asns))
        (Sdx_core.Ppolicy.peers p.outbound))
    (Sdx_core.Config.participants w.config)

let test_workload_deterministic () =
  let w1 = small_workload () and w2 = small_workload () in
  check_bool "same universe" true
    (List.for_all2 Prefix.equal w1.universe w2.universe);
  check_bool "same announcers" true
    (List.for_all2
       (fun (p1, a1) (p2, a2) -> Prefix.equal p1 p2 && Asn.equal a1 a2)
       w1.announcers w2.announcers)

let test_workload_best_changing_update () =
  let w = small_workload () in
  let rng = Rng.create ~seed:99 in
  let u = Workload.random_best_changing_update rng w in
  let server = Sdx_core.Config.server w.config in
  let change = Route_server.apply server u in
  check_bool "changes someone's best" true (change.best_changed_for <> [])

let test_workload_burst_distinct () =
  let w = small_workload () in
  let rng = Rng.create ~seed:100 in
  let updates = Workload.burst rng w ~size:10 in
  check_int "burst size" 10 (List.length updates);
  let prefixes = List.map Update.prefix updates in
  check_int "distinct prefixes" 10
    (List.length (List.sort_uniq Prefix.compare prefixes))

let test_workload_announcement_sets () =
  let rng = Rng.create ~seed:31 in
  let sets = Workload.announcement_sets rng ~participants:50 ~prefixes:500 in
  check_int "one set per participant" 50 (List.length sets);
  let union =
    List.fold_left Prefix.Set.union Prefix.Set.empty sets
  in
  check_int "sets cover the table" 500 (Prefix.Set.cardinal union);
  (* Overlap exists: some prefix is announced by several participants. *)
  let total = List.fold_left (fun n s -> n + Prefix.Set.cardinal s) 0 sets in
  check_bool "announcements overlap" true (total > 500)

let test_workload_runtime_compiles () =
  let w = small_workload () in
  let runtime = Workload.runtime w in
  check_bool "groups exist" true (Sdx_core.Runtime.group_count runtime > 0);
  check_bool "rules exist" true (Sdx_core.Runtime.rule_count runtime > 0)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_trace_profiles () =
  check_int "ams peers" 116 Trace.ams_ix.collector_peers;
  check_int "updates" 11_161_624 Trace.ams_ix.updates;
  let scaled = Trace.scale Trace.ams_ix 0.01 in
  check_int "scaled updates" 111_616 scaled.updates;
  check_int "scaled prefixes" 5_180 scaled.prefixes

let test_trace_statistics () =
  let rng = Rng.create ~seed:41 in
  let profile = Trace.scale Trace.ams_ix 0.002 in
  let trace = Trace.generate rng profile ~duration_s:(6.0 *. 86400.0) () in
  let stats = Trace.stats profile trace in
  check_int "update budget met" profile.updates stats.total_updates;
  check_bool "updated fraction close to target" true
    (Float.abs (stats.updated_fraction -. profile.updated_prefix_fraction) < 0.02);
  check_bool "75% of bursts touch <= 3 prefixes" true
    (Float.abs (stats.bursts_at_most_3 -. 0.75) < 0.05);
  check_bool "inter-arrival >= 10s for ~75%" true
    (Float.abs (stats.interarrival_ge_10s -. 0.75) < 0.08);
  check_bool "inter-arrival >= 60s for ~50%" true
    (Float.abs (stats.interarrival_ge_60s -. 0.5) < 0.08);
  check_bool "heavy tail exists" true (stats.largest_burst > 3)

let test_trace_updates_confined_to_unstable () =
  let rng = Rng.create ~seed:42 in
  let profile = Trace.scale Trace.ams_ix 0.001 in
  let trace = Trace.generate rng profile ~duration_s:86400.0 () in
  let stats = Trace.stats profile trace in
  (* Stability is a property of the prefix: only the unstable share is
     ever updated. *)
  check_bool "confined" true
    (stats.distinct_prefixes
    <= int_of_float
         (profile.updated_prefix_fraction *. float_of_int profile.prefixes)
       + 1)

let test_trace_save_load_roundtrip () =
  let rng = Rng.create ~seed:44 in
  let profile = Trace.scale Trace.ams_ix 0.0005 in
  let trace = Trace.generate rng profile ~duration_s:43200.0 () in
  let path = Filename.temp_file "sdx_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save trace path;
      let loaded = Trace.load path in
      check_int "same burst count" (List.length trace) (List.length loaded);
      List.iter2
        (fun (a : Trace.burst) (b : Trace.burst) ->
          check_bool "same time" true (Float.abs (a.at_s -. b.at_s) < 0.01);
          check_bool "same updates" true (a.updates = b.updates))
        trace loaded)

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "sdx_trace_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "B 0.0\nX nonsense\n";
      close_out oc;
      check_bool "malformed rejected" true
        (try
           ignore (Trace.load path);
           false
         with Failure _ -> true))

let test_trace_ordered () =
  let rng = Rng.create ~seed:43 in
  let profile = Trace.scale Trace.linx 0.0005 in
  let trace = Trace.generate rng profile ~duration_s:86400.0 () in
  let times = List.map (fun (b : Trace.burst) -> b.at_s) trace in
  check_bool "bursts time-ordered" true
    (List.sort Float.compare times = times)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let test_replay_two_stage () =
  let rng = Rng.create ~seed:51 in
  let w = Workload.build rng ~participants:15 ~prefixes:150 () in
  let runtime = Workload.runtime w in
  let base_rules = Sdx_core.Runtime.rule_count runtime in
  let profile = Trace.scale Trace.ams_ix 0.0002 in
  let trace = Replay.trace_for_workload rng w ~profile ~duration_s:7200.0 in
  let result = Replay.run runtime trace in
  check_int "every update processed" profile.updates result.updates;
  check_bool "some updates moved best paths" true (result.best_changed > 0);
  check_bool "quiet gaps triggered background stage" true
    (result.reoptimizations > 0);
  check_bool "fast path bounded" true (result.peak_extra_rules < 10 * base_rules);
  check_bool "timing collected" true
    (result.mean_update_ms > 0.0 && result.p99_update_ms >= result.mean_update_ms)

let test_replay_trace_targets_workload () =
  let rng = Rng.create ~seed:52 in
  let w = Workload.build rng ~participants:10 ~prefixes:100 () in
  let profile = Trace.scale Trace.ams_ix 0.0001 in
  let trace = Replay.trace_for_workload rng w ~profile ~duration_s:3600.0 in
  let asns =
    List.map (fun (s : Population.spec) -> s.asn) w.specs
  in
  List.iter
    (fun (b : Trace.burst) ->
      List.iter
        (fun u ->
          check_bool "peer is a participant" true
            (List.exists (Asn.equal (Update.peer u)) asns);
          check_bool "prefix is announced" true
            (List.exists (Prefix.equal (Update.prefix u)) w.universe))
        b.updates)
    trace

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sdx_ixp"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "pareto bound" `Quick test_rng_pareto_bound;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "bernoulli bias" `Quick test_rng_bool_bias;
        ] );
      ( "population",
        [
          Alcotest.test_case "counts" `Quick test_population_counts;
          Alcotest.test_case "skew" `Quick test_population_skew;
          Alcotest.test_case "kinds and ports" `Quick test_population_kinds_and_ports;
        ] );
      ( "prefixes",
        [
          Alcotest.test_case "disjoint" `Quick test_prefixes_disjoint;
          Alcotest.test_case "deterministic" `Quick test_prefixes_deterministic;
          Alcotest.test_case "out of range" `Quick test_prefixes_out_of_range;
        ] );
      ( "workload",
        [
          Alcotest.test_case "builds" `Quick test_workload_builds;
          Alcotest.test_case "policies installed" `Quick test_workload_policies_installed;
          Alcotest.test_case "targets are participants" `Quick
            test_workload_outbound_targets_are_participants;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "best-changing update" `Quick
            test_workload_best_changing_update;
          Alcotest.test_case "burst distinct" `Quick test_workload_burst_distinct;
          Alcotest.test_case "announcement sets" `Quick test_workload_announcement_sets;
          Alcotest.test_case "runtime compiles" `Quick test_workload_runtime_compiles;
        ] );
      ( "trace",
        [
          Alcotest.test_case "profiles" `Quick test_trace_profiles;
          Alcotest.test_case "statistics" `Quick test_trace_statistics;
          Alcotest.test_case "confined to unstable" `Quick
            test_trace_updates_confined_to_unstable;
          Alcotest.test_case "ordered" `Quick test_trace_ordered;
          Alcotest.test_case "save/load roundtrip" `Quick
            test_trace_save_load_roundtrip;
          Alcotest.test_case "load rejects garbage" `Quick
            test_trace_load_rejects_garbage;
        ] );
      ( "replay",
        [
          Alcotest.test_case "two-stage strategy" `Quick test_replay_two_stage;
          Alcotest.test_case "targets the workload" `Quick
            test_replay_trace_targets_workload;
        ] );
    ]
