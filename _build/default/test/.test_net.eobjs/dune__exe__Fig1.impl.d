test/fig1.ml: Asn Compile Config Ipv4 List Mac Packet Participant Ppolicy Pred Prefix Route Route_server Runtime Sdx_arp Sdx_bgp Sdx_core Sdx_net Sdx_policy
