test/test_net.ml: Aggregate Alcotest Bytes Codec Ipv4 List Mac Option Packet Prefix Prefix_trie Printf QCheck2 QCheck_alcotest Result Sdx_net String
