test/test_openflow.ml: Alcotest Classifier Connection Flow Ipv4 List Mac Message Mods Option Packet Pattern Policy Pred Prefix QCheck2 QCheck_alcotest Sdx_net Sdx_openflow Sdx_policy Switch Table
