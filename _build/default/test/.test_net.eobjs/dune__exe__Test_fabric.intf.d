test/test_fabric.mli:
