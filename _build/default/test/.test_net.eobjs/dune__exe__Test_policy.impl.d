test/test_policy.ml: Alcotest Classifier Format Ipv4 List Mac Mods Option Packet Pattern Policy Pred Prefix QCheck2 QCheck_alcotest Sdx_net Sdx_policy String
