test/test_ixp.ml: Alcotest Array Asn Filename Float Fun Int List Population Prefix Prefixes Replay Rng Route_server Sdx_bgp Sdx_core Sdx_ixp Sdx_net Sys Trace Update Workload
