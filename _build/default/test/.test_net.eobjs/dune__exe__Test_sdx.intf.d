test/test_sdx.mli:
