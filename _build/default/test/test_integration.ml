(* End-to-end integration tests over randomized workloads: packets are
   generated at participants' networks, tagged by border routers,
   processed by the fabric switch, and the deliveries are checked
   against BGP-level invariants the SDX must enforce (§4.1):

   - traffic is only ever delivered to a participant that exported a BGP
     route for the destination prefix (valid interdomain paths);
   - a participant never receives its own traffic back;
   - default traffic reaches the best route's next hop;
   - the incremental fast path and the background re-optimization agree. *)

open Sdx_net
open Sdx_bgp
open Sdx_ixp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let build_world ~seed ~participants ~prefixes =
  let rng = Rng.create ~seed in
  let w = Workload.build rng ~participants ~prefixes () in
  let runtime = Workload.runtime w in
  let net = Sdx_fabric.Network.create runtime in
  (w, runtime, net)

let random_probe rng (w : Workload.t) =
  let sender =
    (Rng.pick rng
       (List.filter
          (fun (p : Sdx_core.Participant.t) -> not (Sdx_core.Participant.is_remote p))
          (Sdx_core.Config.participants w.config)))
      .Sdx_core.Participant.asn
  in
  let prefix = Rng.pick rng w.universe in
  let packet =
    Packet.make
      ~src_ip:(Ipv4.of_int (0x0C000000 + Rng.int rng 0xFFFF))
      ~dst_ip:(Prefixes.host_in prefix)
      ~proto:(Rng.pick rng [ 6; 17 ])
      ~src_port:(Rng.int rng 60000)
      ~dst_port:(Rng.pick rng [ 80; 443; 8080; 22; 5000 ])
      ()
  in
  (sender, prefix, packet)

let test_delivery_respects_bgp () =
  let w, runtime, net = build_world ~seed:7 ~participants:25 ~prefixes:250 in
  let server = Sdx_core.Config.server w.config in
  let rng = Rng.create ~seed:70 in
  let delivered = ref 0 and dropped = ref 0 in
  for _ = 1 to 300 do
    let sender, prefix, packet = random_probe rng w in
    let deliveries = Sdx_fabric.Network.inject net ~from:sender packet in
    (match deliveries with
    | [] -> incr dropped
    | ds ->
        incr delivered;
        List.iter
          (fun (d : Sdx_fabric.Network.delivery) ->
            check_bool "not reflected to sender" false (Asn.equal d.receiver sender);
            (* The receiver must have announced a route for the prefix
               and export it to the sender. *)
            let feasible = Route_server.feasible server ~receiver:sender prefix in
            check_bool "receiver is a feasible next hop" true
              (List.exists
                 (fun (r : Route.t) -> Asn.equal r.learned_from d.receiver)
                 feasible))
          ds)
    done;
  ignore runtime;
  check_bool "probes were delivered" true (!delivered > 200);
  check_bool "some probes may drop" true (!dropped >= 0)

let test_default_traffic_follows_best () =
  let w, _runtime, net = build_world ~seed:8 ~participants:25 ~prefixes:250 in
  let server = Sdx_core.Config.server w.config in
  let rng = Rng.create ~seed:80 in
  (* Senders without outbound policies must always deliver to the best
     route's advertiser. *)
  let unpolicied =
    List.filter
      (fun (p : Sdx_core.Participant.t) ->
        p.outbound = [] && not (Sdx_core.Participant.is_remote p))
      (Sdx_core.Config.participants w.config)
  in
  check_bool "some unpolicied senders" true (unpolicied <> []);
  for _ = 1 to 200 do
    let sender = (Rng.pick rng unpolicied).Sdx_core.Participant.asn in
    let prefix = Rng.pick rng w.universe in
    let packet = Packet.make ~dst_ip:(Prefixes.host_in prefix) ~dst_port:22 () in
    match
      ( Sdx_fabric.Network.inject net ~from:sender packet,
        Route_server.best server ~receiver:sender prefix )
    with
    | [ d ], Some best ->
        check_bool "delivered to best advertiser" true
          (Asn.equal d.receiver best.learned_from)
    | [], None -> ()
    | [], Some _ -> Alcotest.fail "traffic with a route was dropped"
    | _ :: _, None -> Alcotest.fail "traffic without a route was delivered"
    | _ -> Alcotest.fail "unexpected multicast"
  done

let test_fast_path_matches_reoptimized () =
  let w, runtime, net = build_world ~seed:9 ~participants:20 ~prefixes:200 in
  let rng = Rng.create ~seed:90 in
  (* Apply a burst through the fast path... *)
  let updates = Workload.burst rng w ~size:15 in
  ignore (Sdx_core.Runtime.handle_burst runtime updates);
  Sdx_fabric.Network.sync net;
  let probes =
    List.init 150 (fun _ ->
        let sender, _, packet = random_probe rng w in
        (sender, packet))
  in
  let observe () =
    List.map
      (fun (sender, packet) ->
        List.map
          (fun (d : Sdx_fabric.Network.delivery) -> (d.receiver, d.receiver_port))
          (Sdx_fabric.Network.inject net ~from:sender packet))
      probes
  in
  let with_extras = observe () in
  check_bool "fast path rules present" true
    (Sdx_core.Runtime.extra_rule_count runtime > 0);
  (* ...then re-optimize in the background and compare behavior. *)
  ignore (Sdx_core.Runtime.reoptimize runtime);
  Sdx_fabric.Network.sync net;
  let after = observe () in
  check_bool "fast path = background recompilation" true (with_extras = after)

let test_withdrawal_failover_end_to_end () =
  let w, runtime, net = build_world ~seed:10 ~participants:20 ~prefixes:200 in
  let server = Sdx_core.Config.server w.config in
  (* Find a prefix with at least two advertisers and a sender that is
     neither of them. *)
  let all = Sdx_core.Config.participants w.config in
  let pick () =
    List.find_map
      (fun prefix ->
        match Route_server.candidates server prefix with
        | (r1 : Route.t) :: r2 :: _ ->
            let sender =
              List.find_opt
                (fun (p : Sdx_core.Participant.t) ->
                  (not (Sdx_core.Participant.is_remote p))
                  && (not (Asn.equal p.asn r1.learned_from))
                  && not (Asn.equal p.asn r2.Route.learned_from))
                all
            in
            Option.map (fun (s : Sdx_core.Participant.t) -> (prefix, s.asn)) sender
        | _ -> None)
      w.universe
  in
  match pick () with
  | None -> Alcotest.skip ()
  | Some (prefix, sender) ->
      let best_before =
        Option.get (Route_server.best server ~receiver:sender prefix)
      in
      let packet = Packet.make ~dst_ip:(Prefixes.host_in prefix) ~dst_port:22 () in
      (* Withdraw the best route; traffic must shift to the next
         candidate without waiting for re-optimization. *)
      ignore
        (Sdx_core.Runtime.withdraw runtime ~peer:best_before.learned_from prefix);
      Sdx_fabric.Network.sync net;
      let best_after =
        Option.get (Route_server.best server ~receiver:sender prefix)
      in
      check_bool "best actually changed" false
        (Asn.equal best_before.learned_from best_after.learned_from);
      (match Sdx_fabric.Network.inject net ~from:sender packet with
      | [ d ] ->
          check_bool "failover to new best" true
            (Asn.equal d.receiver best_after.learned_from)
      | _ -> Alcotest.fail "expected single delivery after failover")

let test_no_forwarding_loops () =
  (* §4.1: any packet entering the fabric either reaches a physical port
     or is dropped; re-injecting a delivered packet at the receiver must
     not bounce it back through the fabric to a third party forever.
     We verify the static property: every delivered packet carries the
     receiver's own port MAC, so the receiver consumes it. *)
  let w, _runtime, net = build_world ~seed:11 ~participants:15 ~prefixes:150 in
  let rng = Rng.create ~seed:110 in
  for _ = 1 to 200 do
    let sender, _, packet = random_probe rng w in
    List.iter
      (fun (d : Sdx_fabric.Network.delivery) ->
        let receiver = Sdx_core.Config.participant w.config d.receiver in
        let port = Sdx_core.Participant.port receiver d.receiver_port in
        check_bool "delivered frame addressed to the receiving port" true
          (Mac.equal d.packet.dst_mac port.mac))
      (Sdx_fabric.Network.inject net ~from:sender packet)
  done

let test_rule_counts_consistent () =
  let _, runtime, net = build_world ~seed:12 ~participants:15 ~prefixes:150 in
  let installed = Sdx_openflow.Switch.rule_count (Sdx_fabric.Network.switch net) in
  check_int "switch holds the whole classifier" (Sdx_core.Runtime.rule_count runtime)
    installed

let test_scales_with_multiport_and_remote () =
  (* Mixed hand-built config: a multi-port sender with a policy, plus a
     remote participant doing anycast load balancing, all at once. *)
  let open Sdx_core in
  let open Sdx_policy in
  let ip = Ipv4.of_string and pfx = Prefix.of_string in
  let a =
    Participant.make ~asn:(Asn.of_int 1)
      ~ports:
        [
          (Mac.of_string "0a:00:00:00:01:01", ip "172.9.1.1");
          (Mac.of_string "0a:00:00:00:01:02", ip "172.9.1.2");
        ]
      ~outbound:[ Ppolicy.fwd (Pred.dst_port 80) (Ppolicy.Peer (Asn.of_int 2)) ]
      ()
  in
  let b =
    Participant.make ~asn:(Asn.of_int 2)
      ~ports:[ (Mac.of_string "0a:00:00:00:02:01", ip "172.9.2.1") ]
      ()
  in
  let c =
    Participant.make ~asn:(Asn.of_int 3)
      ~ports:[ (Mac.of_string "0a:00:00:00:03:01", ip "172.9.3.1") ]
      ()
  in
  let anycast = pfx "74.125.1.0/24" in
  let tenant =
    Participant.make ~asn:(Asn.of_int 4) ~ports:[]
      ~inbound:
        [
          Ppolicy.rewrite
            (Pred.dst_ip (Prefix.make (ip "74.125.1.1") 32))
            (Mods.make ~dst_ip:(ip "44.0.0.9") ());
        ]
      ~originated:[ anycast ] ()
  in
  let config = Config.make [ a; b; c; tenant ] in
  ignore (Config.announce config ~peer:(Asn.of_int 2) ~port:0 (pfx "50.0.0.0/16"));
  ignore (Config.announce config ~peer:(Asn.of_int 3) ~port:0 (pfx "50.0.0.0/16"));
  ignore (Config.announce config ~peer:(Asn.of_int 3) ~port:0 (pfx "44.0.0.0/16"));
  let runtime = Runtime.create config in
  let net = Sdx_fabric.Network.create runtime in
  (* Multi-port sender's web traffic diverts to B. *)
  (match
     Sdx_fabric.Network.inject net ~from:(Asn.of_int 1)
       (Packet.make ~dst_ip:(ip "50.0.1.1") ~dst_port:80 ())
   with
  | [ d ] -> check_bool "diverted" true (Asn.equal d.receiver (Asn.of_int 2))
  | _ -> Alcotest.fail "diversion failed");
  (* Anycast traffic terminates at the tenant's policy: rewritten and
     re-resolved toward C (which announces 44.0.0.0/16). *)
  match
    Sdx_fabric.Network.inject net ~from:(Asn.of_int 1)
      (Packet.make ~dst_ip:(ip "74.125.1.1") ~dst_port:80 ())
  with
  | [ d ] ->
      check_bool "rewritten to instance" true
        (Ipv4.equal d.packet.dst_ip (ip "44.0.0.9"));
      check_bool "delivered via C" true (Asn.equal d.receiver (Asn.of_int 3))
  | _ -> Alcotest.fail "anycast load balance failed"

(* ------------------------------------------------------------------ *)
(* Randomized equivalence: for arbitrary small exchanges, the optimized
   compiler, the naive Pyretic-style composition, and the multi-switch
   split all forward identically.                                      *)

let pool_prefix i = Prefix.make (Ipv4.of_int (0x1E000000 + (i lsl 16))) 16

(* A random exchange derived from one seed: 3-8 participants with random
   announcements and random (valid) policies. *)
let build_random_config seed =
  let rng = Rng.create ~seed in
  let n = 3 + Rng.int rng 5 in
  let asns = List.init n (fun i -> Asn.of_int (100 * (i + 1))) in
  let ports_of i =
    let count = if Rng.bool rng ~p:0.25 then 2 else 1 in
    List.init count (fun j ->
        ( Mac.of_int (0x0E_00_00_00_00_00 + (i * 16) + j),
          Ipv4.of_int (0x0E000000 + (i * 256) + j + 1) ))
  in
  let random_pred () =
    match Rng.int rng 4 with
    | 0 -> Sdx_policy.Pred.dst_port (Rng.pick rng [ 80; 443 ])
    | 1 -> Sdx_policy.Pred.src_ip (Prefix.of_string (Rng.pick rng [ "0.0.0.0/1"; "128.0.0.0/1" ]))
    | 2 -> Sdx_policy.Pred.proto (Rng.pick rng [ 6; 17 ])
    | _ ->
        Sdx_policy.Pred.and_
          (Sdx_policy.Pred.dst_port (Rng.pick rng [ 80; 443 ]))
          (Sdx_policy.Pred.proto 6)
  in
  let participants =
    List.mapi
      (fun i asn ->
        let others = List.filter (fun a -> not (Asn.equal a asn)) asns in
        let ports = ports_of i in
        let outbound =
          List.concat
            (List.init (Rng.int rng 3) (fun _ ->
                 let target =
                   if Rng.bool rng ~p:0.8 then
                     Sdx_core.Ppolicy.Peer (Rng.pick rng others)
                   else Sdx_core.Ppolicy.Drop
                 in
                 [ Sdx_core.Ppolicy.fwd (random_pred ()) target ]))
        in
        let inbound =
          List.concat
            (List.init (Rng.int rng 2) (fun _ ->
                 [
                   Sdx_core.Ppolicy.fwd (random_pred ())
                     (Sdx_core.Ppolicy.Phys (Rng.int rng (List.length ports)));
                 ]))
        in
        Sdx_core.Participant.make ~asn ~ports ~inbound ~outbound ())
      asns
  in
  let config = Sdx_core.Config.make participants in
  (* Random announcements over a small prefix pool; ~30% dual-homed. *)
  List.iteri
    (fun i prefix_index ->
      ignore i;
      let prefix = pool_prefix prefix_index in
      let owner = Rng.pick rng asns in
      ignore
        (Sdx_core.Config.announce config ~peer:owner ~port:0
           ~as_path:[ owner; Asn.of_int 65001 ]
           prefix);
      if Rng.bool rng ~p:0.3 then begin
        let backup = Rng.pick rng asns in
        if not (Asn.equal backup owner) then
          ignore
            (Sdx_core.Config.announce config ~peer:backup ~port:0
               ~as_path:[ backup; Asn.of_int 65001; Asn.of_int 65002 ]
               prefix)
      end)
    (List.init 8 Fun.id);
  (config, asns)

(* Probe packets as the senders' routers would tag them. *)
let tagged_probes runtime asns =
  let config = Sdx_core.Runtime.config runtime in
  let server = Sdx_core.Config.server config in
  let arp = Sdx_core.Runtime.arp runtime in
  List.concat_map
    (fun sender ->
      match Sdx_core.Config.participant_opt config sender with
      | Some p when not (Sdx_core.Participant.is_remote p) ->
          List.concat_map
            (fun prefix_index ->
              let prefix = pool_prefix prefix_index in
              let dst = Prefix.host prefix 1 in
              match Route_server.lookup_best server ~receiver:sender dst with
              | None -> []
              | Some (covering, _) -> (
                  match
                    Sdx_core.Runtime.announcement runtime ~receiver:sender covering
                  with
                  | None -> []
                  | Some route -> (
                      match Sdx_arp.Responder.query arp route.Route.next_hop with
                      | None -> []
                      | Some tag ->
                          List.concat_map
                            (fun dst_port ->
                              List.map
                                (fun src ->
                                  Packet.make
                                    ~port:(Sdx_core.Config.switch_port config sender 0)
                                    ~dst_mac:tag ~src_ip:(Ipv4.of_string src)
                                    ~dst_ip:dst ~dst_port ())
                                [ "10.0.0.1"; "200.0.0.1" ])
                            [ 80; 443; 22 ])))
            (List.init 8 Fun.id)
      | _ -> [])
    asns

let test_random_naive_optimized_equivalence () =
  for seed = 1 to 25 do
    let config, asns = build_random_config seed in
    let opt = Sdx_core.Runtime.create ~optimized:true config in
    let naive = Sdx_core.Runtime.create ~optimized:false config in
    let copt = Sdx_core.Runtime.classifier opt in
    let cnaive = Sdx_core.Runtime.classifier naive in
    List.iter
      (fun pkt ->
        if
          not
            (Sdx_policy.Classifier.eval copt pkt
            = Sdx_policy.Classifier.eval cnaive pkt)
        then
          Alcotest.failf "seed %d: naive and optimized disagree on %a" seed
            Packet.pp pkt)
      (tagged_probes opt asns)
  done

let test_random_topology_equivalence () =
  for seed = 1 to 25 do
    let config, asns = build_random_config seed in
    let runtime = Sdx_core.Runtime.create config in
    let classifier = Sdx_core.Runtime.classifier runtime in
    let rng = Rng.create ~seed:(seed * 7) in
    let switch_count = 2 + Rng.int rng 2 in
    let switches = List.init switch_count Fun.id in
    let links = List.init (switch_count - 1) (fun i -> (i, i + 1)) in
    let port_home =
      List.init
        (Sdx_core.Config.port_count config)
        (fun i -> (i + 1, Rng.int rng switch_count))
    in
    let topo = Sdx_fabric.Topology.create ~switches ~links ~port_home in
    let fabric = Sdx_fabric.Topology.build topo classifier in
    let keep_real pkts =
      List.filter
        (fun (p : Packet.t) -> p.port <> Sdx_core.Compile.blackhole_port)
        pkts
    in
    List.iter
      (fun pkt ->
        let big = keep_real (Sdx_policy.Classifier.eval classifier pkt) in
        let split = keep_real (Sdx_fabric.Topology.process fabric pkt) in
        if big <> split then
          Alcotest.failf "seed %d: distributed fabric diverges on %a" seed
            Packet.pp pkt)
      (tagged_probes runtime asns)
  done

(* Failure injection: a session reset withdraws a peer's whole table; the
   SDX must reroute everything that has an alternative and drop the rest,
   with no stale diversions. *)
let test_session_reset_end_to_end () =
  let w, runtime, net = build_world ~seed:13 ~participants:20 ~prefixes:150 in
  let server = Sdx_core.Config.server w.config in
  (* Reset the biggest announcer's session. *)
  let victim =
    (List.hd w.specs).Population.asn
  in
  let announced = Route_server.prefixes_of server victim in
  check_bool "victim announces" true (announced <> []);
  let session = Session.create ~peer:victim in
  Session.establish session;
  let withdrawals = Session.reset session announced in
  ignore (Sdx_core.Runtime.handle_burst runtime withdrawals);
  Sdx_fabric.Network.sync net;
  check_int "table flushed" 0 (List.length (Route_server.prefixes_of server victim));
  (* Probe every formerly-announced prefix from some other participant. *)
  let sender =
    (List.find
       (fun (s : Population.spec) -> not (Asn.equal s.asn victim))
       w.specs)
      .asn
  in
  List.iter
    (fun prefix ->
      let pkt = Packet.make ~dst_ip:(Prefixes.host_in prefix) ~dst_port:22 () in
      let deliveries = Sdx_fabric.Network.inject net ~from:sender pkt in
      match (deliveries, Route_server.best server ~receiver:sender prefix) with
      | [], None -> ()  (* no alternative: correctly dropped *)
      | [ d ], Some best ->
          check_bool "rerouted to surviving advertiser" true
            (Asn.equal d.receiver best.Route.learned_from);
          check_bool "never the reset peer" false (Asn.equal d.receiver victim)
      | [], Some _ -> Alcotest.fail "alternative exists but traffic dropped"
      | _ :: _, None -> Alcotest.fail "traffic delivered without any route"
      | _ -> Alcotest.fail "unexpected multicast")
    announced

(* Structural invariants at a larger scale: a 150-participant workload
   compiles quickly and every rule respects the layered-classifier
   contract. *)
let test_large_workload_invariants () =
  let rng = Rng.create ~seed:99 in
  let w = Workload.build rng ~participants:150 ~prefixes:1500 () in
  let runtime = Workload.runtime w in
  let stats = Sdx_core.Compile.stats (Sdx_core.Runtime.compiled runtime) in
  check_bool "groups found" true (stats.group_count > 50);
  check_bool "compiles fast" true (stats.elapsed_s < 10.0);
  let classifier = Sdx_core.Runtime.classifier runtime in
  let n = List.length classifier in
  check_int "stats match classifier" stats.rule_count n;
  List.iteri
    (fun i (r : Sdx_policy.Classifier.rule) ->
      if i < n - 1 then begin
        (* Every non-final rule is pinned and every action relocates. *)
        check_bool "rule pinned" true
          (Option.is_some r.pattern.Sdx_policy.Pattern.port
          || Option.is_some r.pattern.Sdx_policy.Pattern.dst_mac);
        check_bool "no empty actions" true (r.action <> []);
        List.iter
          (fun (m : Sdx_policy.Mods.t) ->
            check_bool "action relocates" true (Option.is_some m.port))
          r.action
      end)
    classifier;
  (* Distinct groups have distinct VNHs and VMACs, all ARP-resolvable. *)
  let groups = Sdx_core.Compile.groups (Sdx_core.Runtime.compiled runtime) in
  let vnhs = List.map (fun (g : Sdx_core.Compile.group) -> g.vnh) groups in
  check_int "vnhs distinct" (List.length groups)
    (List.length (List.sort_uniq Ipv4.compare vnhs));
  let arp = Sdx_core.Runtime.arp runtime in
  check_bool "all vnhs resolve" true
    (List.for_all (fun v -> Option.is_some (Sdx_arp.Responder.query arp v)) vnhs);
  (* Flow priorities are strictly descending within each band. *)
  let flows = Sdx_core.Runtime.flows runtime in
  check_int "flows match rules" n (List.length flows);
  check_int "priorities unique" n
    (List.length
       (List.sort_uniq Int.compare
          (List.map (fun (f : Sdx_openflow.Flow.t) -> f.priority) flows)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sdx_integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "deliveries respect BGP" `Quick test_delivery_respects_bgp;
          Alcotest.test_case "default traffic follows best" `Quick
            test_default_traffic_follows_best;
          Alcotest.test_case "fast path = reoptimized" `Quick
            test_fast_path_matches_reoptimized;
          Alcotest.test_case "withdrawal failover" `Quick
            test_withdrawal_failover_end_to_end;
          Alcotest.test_case "no forwarding loops" `Quick test_no_forwarding_loops;
          Alcotest.test_case "rule counts consistent" `Quick test_rule_counts_consistent;
          Alcotest.test_case "multiport + remote anycast" `Quick
            test_scales_with_multiport_and_remote;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "naive = optimized on random exchanges" `Slow
            test_random_naive_optimized_equivalence;
          Alcotest.test_case "big switch = distributed fabric" `Slow
            test_random_topology_equivalence;
          Alcotest.test_case "session reset reroutes" `Quick
            test_session_reset_end_to_end;
          Alcotest.test_case "large workload invariants" `Slow
            test_large_workload_invariants;
        ] );
    ]
