examples/wide_area_load_balancer.ml: Deployment Format List Scenarios Sdx_fabric
