examples/bgp_gateway.ml: Asn Bytes Config Format Gateway Ipv4 List Mac Participant Peer Ppolicy Prefix Result Route Runtime Sdx_arp Sdx_bgp Sdx_core Sdx_net Sdx_policy String Update Wire
