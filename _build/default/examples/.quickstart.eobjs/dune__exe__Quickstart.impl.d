examples/quickstart.ml: Asn Classifier Compile Config Format Ipv4 List Mac Packet Participant Ppolicy Pred Prefix Route Runtime Sdx_bgp Sdx_core Sdx_fabric Sdx_net Sdx_policy String
