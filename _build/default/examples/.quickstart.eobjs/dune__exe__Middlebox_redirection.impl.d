examples/middlebox_redirection.ml: As_path_regex Asn Config Format Ipv4 List Mac Packet Participant Ppolicy Pred Prefix Route_server Runtime Sdx_bgp Sdx_core Sdx_fabric Sdx_net Sdx_policy String
