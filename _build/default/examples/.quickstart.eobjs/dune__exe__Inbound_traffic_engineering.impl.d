examples/inbound_traffic_engineering.ml: Asn Config Format Ipv4 List Mac Packet Participant Ppolicy Pred Prefix Runtime Sdx_bgp Sdx_core Sdx_fabric Sdx_net Sdx_policy
