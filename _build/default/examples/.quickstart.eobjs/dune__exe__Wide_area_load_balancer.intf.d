examples/wide_area_load_balancer.mli:
