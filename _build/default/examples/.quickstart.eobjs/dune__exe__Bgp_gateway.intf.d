examples/bgp_gateway.mli:
