examples/quickstart.mli:
