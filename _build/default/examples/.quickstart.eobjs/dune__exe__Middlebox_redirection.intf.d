examples/middlebox_redirection.mli:
