examples/anycast_multi_sdx.mli:
