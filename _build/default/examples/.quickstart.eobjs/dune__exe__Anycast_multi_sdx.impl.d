examples/anycast_multi_sdx.ml: Asn Config Format Ipv4 Mac Mods Packet Participant Ppolicy Pred Prefix Printf Runtime Sdx_bgp Sdx_core Sdx_fabric Sdx_net Sdx_policy String
