examples/application_specific_peering.ml: Deployment Format List Scenarios Sdx_fabric
