lib/arp/responder.mli: Ipv4 Mac Sdx_net
