lib/arp/responder.ml: Hashtbl Ipv4 List Mac Sdx_net
