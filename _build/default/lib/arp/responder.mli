(** The SDX ARP responder (§5.1).

    Virtual next hops are virtual IP addresses, so the controller answers
    ARP queries for them with the corresponding virtual MAC.  Real
    next-hop interfaces can be registered too, so border routers resolve
    both through one responder. *)

open Sdx_net

type t

val create : unit -> t

val register : t -> Ipv4.t -> Mac.t -> unit
(** Later registrations for the same address overwrite earlier ones, as
    the incremental compiler re-binds VNHs. *)

val unregister : t -> Ipv4.t -> unit

val query : t -> Ipv4.t -> Mac.t option
(** The answer the responder would send for an ARP request, if any. *)

val size : t -> int
val bindings : t -> (Ipv4.t * Mac.t) list
