open Sdx_net

type t = { table : (Ipv4.t, Mac.t) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }
let register t ip mac = Hashtbl.replace t.table ip mac
let unregister t ip = Hashtbl.remove t.table ip
let query t ip = Hashtbl.find_opt t.table ip
let size t = Hashtbl.length t.table

let bindings t =
  List.sort
    (fun (a, _) (b, _) -> Ipv4.compare a b)
    (Hashtbl.fold (fun ip mac acc -> (ip, mac) :: acc) t.table [])
