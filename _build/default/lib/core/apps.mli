(** Ready-made SDX applications — parameterized builders for the four
    wide-area traffic-delivery applications of §2, so a participant can
    deploy one in a line instead of writing raw clauses. *)

open Sdx_net
open Sdx_policy
open Sdx_bgp

val application_specific_peering :
  ?dst:Prefix.t -> ports:int list -> via:Asn.t -> unit -> Ppolicy.t
(** Outbound: traffic for the given transport [ports] (optionally
    restricted to destination [dst]) goes via the [via] peer; everything
    else follows BGP.  The paper's flagship example. *)

val inbound_split_by_source :
  (Prefix.t * int) list -> Ppolicy.t
(** Inbound traffic engineering: each (source prefix, own-port index)
    pair pins matching traffic to a port — AS B's policy in §3.1. *)

val wide_area_load_balancer :
  service:Ipv4.t ->
  default_instance:Ipv4.t ->
  pinned:(Prefix.t * Ipv4.t) list ->
  Ppolicy.t
(** Inbound policy for a remote participant originating an anycast
    [service] address: requests from each pinned client prefix are
    rewritten to that instance; everything else goes to
    [default_instance].  The §3.1 server load balancer. *)

val middlebox_steering :
  ?src:Prefix.t list -> ?ports:int list -> mbox:Asn.t -> unit -> Ppolicy.t
(** Steer traffic from the given sources and/or transport ports through
    a middlebox host (§2's redirection; compose several hosts'
    policies for §8's service chaining). *)

val firewall : Pred.t list -> Ppolicy.t
(** Drop traffic matching any of the given predicates (inbound or
    outbound). *)

val steer_by_as_path :
  Route_server.t -> receiver:Asn.t -> regex:string -> mbox:Asn.t -> Ppolicy.t
(** The §3.2 BGP-attribute grouping: steer traffic {e sent by} networks
    whose announced AS paths match [regex] (e.g. [".*43515$"] for
    YouTube) through a middlebox.  The prefix list is snapshotted from
    the route server's current RIB for [receiver]. *)
