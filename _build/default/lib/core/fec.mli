(** Forwarding Equivalence Classes (§4.2).

    Given the collection of prefix sets touched by outbound policies
    (pass 1) and a per-prefix default-forwarding key (pass 2), computes
    the Minimum Disjoint Subset partition (pass 3): the coarsest grouping
    in which any two prefixes of a group are members of exactly the same
    policy sets and share the same default behavior.

    The partition is computed by signature grouping — each prefix's
    signature is the list of set indices containing it plus its default
    key — which runs in time linear in the total size of the input sets
    and is equivalent to the paper's polynomial-time MDS. *)

open Sdx_net

val partition :
  sets:Prefix.Set.t list ->
  default_key:(Prefix.t -> int) ->
  Prefix.t list list
(** Groups covering exactly the union of [sets]; prefixes outside every
    set keep their default behavior and are not grouped (the route server
    re-advertises them with their next hop unchanged).  Each returned
    group is sorted; groups appear in a deterministic order. *)

val group_count :
  sets:Prefix.Set.t list -> default_key:(Prefix.t -> int) -> int
(** [List.length (partition ...)] without materializing the groups. *)

val is_valid_partition :
  sets:Prefix.Set.t list ->
  default_key:(Prefix.t -> int) ->
  Prefix.t list list ->
  bool
(** Checks the MDS properties (used by tests): groups are disjoint, cover
    the union of [sets], each group lies entirely inside or outside every
    set, all members share a default key, and the partition is maximal
    (no two groups could be merged). *)
