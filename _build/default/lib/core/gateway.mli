(** The SDX's BGP front door: one wire-level session per participant.

    Participants' border routers speak ordinary BGP; the gateway decodes
    their bytes, pushes the updates through the runtime's fast path, and
    re-advertises the (VNH-rewritten) results to every other established
    session — the full §5.1 loop from "BGP updates arrive" to "the route
    server marshals the corresponding BGP updates and sends them to the
    appropriate participant ASes", over real message encoding. *)

open Sdx_net
open Sdx_bgp

type t

val create : ?rs_asn:Asn.t -> ?rs_id:Ipv4.t -> Runtime.t -> t
(** One server-side session endpoint per participant.  [rs_asn] defaults
    to 65535, [rs_id] to 172.31.255.1 (identities of the route server
    itself in its OPENs). *)

val runtime : t -> Runtime.t

val session : t -> Asn.t -> Peer.t
(** The server-side endpoint for one participant.
    @raise Not_found for an unknown ASN. *)

val connect_all : t -> unit
(** Open all sessions (queues the route server's OPENs). *)

val deliver : t -> from:Asn.t -> bytes -> (Runtime.update_stats list, string) result
(** Feed bytes received from a participant's router.  Every decoded
    update runs through {!Runtime.handle_update}; updates that changed a
    best route are re-advertised to every other established session.  A
    session whose FSM requested a route flush (loss after establishment)
    has its routes withdrawn from the server automatically. *)

val outbox : t -> Asn.t -> bytes list
(** Drain the bytes to transmit toward one participant. *)

val advertise_table : t -> Asn.t -> int
(** Queue the participant's full current table (one UPDATE per prefix,
    VNH-rewritten) on its session — the initial table transfer after
    establishment.  Returns the number of routes sent. *)

val established : t -> Asn.t list
(** Participants whose sessions are currently established. *)
