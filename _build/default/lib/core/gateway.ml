open Sdx_net
open Sdx_bgp

type t = {
  runtime : Runtime.t;
  sessions : (Asn.t, Peer.t) Hashtbl.t;
  order : Asn.t list;
}

let create ?(rs_asn = Asn.of_int 65535) ?(rs_id = Ipv4.of_string "172.31.255.1")
    runtime =
  let config = Runtime.config runtime in
  let sessions = Hashtbl.create 32 in
  let order =
    List.map
      (fun (p : Participant.t) ->
        let peer =
          Peer.create
            ~local:{ Wire.asn = rs_asn; hold_time = 90; bgp_id = rs_id }
            ~peer_asn:p.asn
        in
        Hashtbl.replace sessions p.asn peer;
        p.asn)
      (Config.participants config)
  in
  { runtime; sessions; order }

let runtime t = t.runtime

let session t asn =
  match Hashtbl.find_opt t.sessions asn with
  | Some s -> s
  | None -> raise Not_found

let connect_all t = Hashtbl.iter (fun _ s -> Peer.connect s) t.sessions

let established t =
  List.filter (fun asn -> Peer.state (session t asn) = Fsm.Established) t.order

let outbox t asn = Peer.pending_output (session t asn)

(* Re-advertise one prefix's new state (announcement with VNH next hop,
   or withdrawal) to every established session except the update's
   source. *)
let readvertise t ~from prefix =
  List.iter
    (fun receiver ->
      if not (Asn.equal receiver from) then begin
        let peer = session t receiver in
        match Runtime.announcement t.runtime ~receiver prefix with
        | Some route -> Peer.send_update peer (Update.announce route)
        | None -> Peer.send_update peer (Update.withdraw ~peer:receiver prefix)
      end)
    (established t)

let flush_if_requested t asn =
  let peer = session t asn in
  if Peer.flush_requested peer then begin
    let server = Config.server (Runtime.config t.runtime) in
    let prefixes = Route_server.prefixes_of server asn in
    List.iter
      (fun prefix ->
        let stats = Runtime.withdraw t.runtime ~peer:asn prefix in
        if stats.best_changed then readvertise t ~from:asn prefix)
      prefixes
  end

let deliver t ~from data =
  let peer = session t from in
  match Peer.feed peer data with
  | Error _ as e ->
      flush_if_requested t from;
      e
  | Ok updates ->
      let stats =
        List.map
          (fun update ->
            let s = Runtime.handle_update t.runtime update in
            if s.Runtime.best_changed then
              readvertise t ~from (Update.prefix update);
            s)
          updates
      in
      flush_if_requested t from;
      Ok stats

let advertise_table t asn =
  let peer = session t asn in
  let routes =
    Compile.fold_announcements
      (Runtime.compiled t.runtime)
      (Runtime.config t.runtime)
      ~receiver:asn
      (fun _prefix route acc -> route :: acc)
      []
  in
  List.iter (fun route -> Peer.send_update peer (Update.announce route)) routes;
  List.length routes
