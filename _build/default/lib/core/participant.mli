(** SDX participants: an AS with zero or more physical ports on the
    exchange fabric and the policies it installed.

    A participant with no physical port is a {e remote} participant
    (§3.1, wide-area server load balancing): it can announce prefixes and
    install policies without exchanging packets at the IXP itself. *)

open Sdx_net
open Sdx_bgp

type port = {
  index : int;  (** participant-local port index: A1 is index 0 *)
  mac : Mac.t;  (** the border router interface's real MAC *)
  ip : Ipv4.t;  (** the interface address, used as BGP next-hop *)
}

type t = {
  asn : Asn.t;
  ports : port list;
  inbound : Ppolicy.t;
  outbound : Ppolicy.t;
  originated : Prefix.t list;
      (** prefixes the SDX originates in BGP on this participant's behalf
          (the participant must own them; see §3.2) *)
}

val make :
  asn:Asn.t ->
  ports:(Mac.t * Ipv4.t) list ->
  ?inbound:Ppolicy.t ->
  ?outbound:Ppolicy.t ->
  ?originated:Prefix.t list ->
  unit ->
  t
(** Policies default to empty (pure BGP default forwarding). *)

val is_remote : t -> bool
val port : t -> int -> port
(** @raise Invalid_argument on an unknown port index. *)

val port_with_ip : t -> Ipv4.t -> port option
val pp : Format.formatter -> t -> unit
