open Sdx_net
open Sdx_policy
open Sdx_bgp

let application_specific_peering ?dst ~ports ~via () =
  List.map
    (fun port ->
      let pred =
        match dst with
        | Some prefix -> Pred.and_ (Pred.dst_ip prefix) (Pred.dst_port port)
        | None -> Pred.dst_port port
      in
      Ppolicy.fwd pred (Ppolicy.Peer via))
    ports

let inbound_split_by_source splits =
  List.map
    (fun (src, port) -> Ppolicy.fwd (Pred.src_ip src) (Ppolicy.Phys port))
    splits

let wide_area_load_balancer ~service ~default_instance ~pinned =
  let service_pred = Pred.dst_ip (Prefix.make service 32) in
  List.map
    (fun (client, instance) ->
      Ppolicy.rewrite
        (Pred.and_ service_pred (Pred.src_ip client))
        (Mods.make ~dst_ip:instance ()))
    pinned
  @ [ Ppolicy.rewrite service_pred (Mods.make ~dst_ip:default_instance ()) ]

let middlebox_steering ?(src = []) ?(ports = []) ~mbox () =
  let src_pred =
    match src with
    | [] -> Pred.True
    | prefixes -> Pred.disj (List.map Pred.src_ip prefixes)
  in
  let port_pred =
    match ports with
    | [] -> Pred.True
    | ps -> Pred.disj (List.map Pred.dst_port ps)
  in
  [ Ppolicy.steer (Pred.and_ src_pred port_pred) mbox ]

let firewall preds = List.map (fun p -> Ppolicy.fwd p Ppolicy.Drop) preds

let steer_by_as_path server ~receiver ~regex ~mbox =
  let re = As_path_regex.compile regex in
  let prefixes = Route_server.filter_prefixes_by_as_path server ~receiver re in
  middlebox_steering ~src:prefixes ~mbox ()
