(** Declarative SDX scenarios: a line-oriented text format describing an
    exchange — participants, their policies (in {!Policy_parser} syntax),
    SDX-originated prefixes, and BGP announcements — so a whole setup can
    live in a file and be loaded by tools and tests.

    {v
    # the paper's Figure 1
    participant AS100 port aa:aa:aa:aa:aa:01 172.0.0.1
    participant AS200 port bb:bb:bb:bb:bb:01 172.0.0.2 port bb:bb:bb:bb:bb:02 172.0.0.3
    outbound AS100 match(dstport=80) >> fwd(AS200) + match(dstport=443) >> fwd(AS300)
    inbound AS200 match(srcip=0.0.0.0/1) >> fwd(port 0)
    originate AS400 74.125.1.0/24
    announce AS200 0 20.0.1.0/24 path 200,65001
    v}

    Blank lines and [#] comments are ignored.  [announce AS port prefix
    path a,b,c] announces from the participant's [port]-th interface with
    the given AS path (defaulting to the participant's own ASN). *)

type error = { line : int; message : string }

val parse : string -> (Config.t, error) result
(** Parses scenario text and returns a wired configuration with all
    announcements applied to its route server. *)

val load : string -> (Config.t, error) result
(** [parse] on a file's contents. *)

val load_exn : string -> Config.t
(** @raise Invalid_argument with a located message on failure. *)

val to_string : Config.t -> string
(** Serializes a configuration (participants, policies, originations,
    and the route server's current announcements) back to scenario
    syntax, such that [parse (to_string c)] reproduces an equivalent
    exchange.  Announcements whose next hop is not a participant port
    (SDX-originated placeholders) are represented by their [originate]
    lines. *)

val save : Config.t -> string -> unit
(** [to_string] into a file. *)

val pp_error : Format.formatter -> error -> unit
