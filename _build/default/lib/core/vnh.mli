(** Allocator of virtual next hops: (virtual IP, virtual MAC) pairs drawn
    from a private pool (§4.2).  The virtual MAC is the data-plane tag;
    the virtual IP is the control-plane signal carried in BGP next-hop
    fields and resolved to the MAC by the ARP responder. *)

open Sdx_net

type t

val create : ?pool:Prefix.t -> unit -> t
(** [pool] defaults to [172.16.0.0/12].  Virtual MACs are drawn from the
    locally-administered range starting at [02:00:00:00:00:00]. *)

val fresh : t -> Ipv4.t * Mac.t
(** @raise Failure when the pool is exhausted. *)

val allocated : t -> int
(** Number of live allocations. *)

val reset : t -> unit
(** Returns every allocation to the pool (used by the background
    re-optimization, which rebuilds the VNH assignment from scratch). *)

val is_virtual : t -> Ipv4.t -> bool
(** Whether the address lies in the allocator's pool (so a next-hop can
    be recognized as virtual). *)
