open Sdx_policy
open Sdx_bgp

type target =
  | Peer of Asn.t
  | Phys of int
  | Redirect of Asn.t
  | Default
  | Drop

type clause = { pred : Pred.t; mods : Mods.t; target : target }
type t = clause list

let empty = []
let clause ?(mods = Mods.identity) pred target = { pred; mods; target }
let fwd pred target = clause pred target
let rewrite pred mods = clause ~mods pred Default
let steer pred mbox = clause pred (Redirect mbox)

let targets t =
  List.rev
    (List.fold_left
       (fun acc c -> if List.mem c.target acc then acc else c.target :: acc)
       [] t)

let peers t =
  List.filter_map
    (function
      | Peer asn -> Some asn
      | Phys _ | Redirect _ | Default | Drop -> None)
    (targets t)

let clause_count = List.length

let pp_target fmt = function
  | Peer asn -> Format.fprintf fmt "fwd(%a)" Asn.pp asn
  | Phys i -> Format.fprintf fmt "fwd(port %d)" i
  | Redirect asn -> Format.fprintf fmt "steer(%a)" Asn.pp asn
  | Default -> Format.pp_print_string fmt "default"
  | Drop -> Format.pp_print_string fmt "drop"

let pp_clause fmt c =
  if Mods.is_identity c.mods then
    Format.fprintf fmt "@[<h>match(%a) >> %a@]" Pred.pp c.pred pp_target c.target
  else
    Format.fprintf fmt "@[<h>match(%a) >> mod%a >> %a@]" Pred.pp c.pred Mods.pp
      c.mods pp_target c.target

let pp fmt t =
  match t with
  | [] -> Format.pp_print_string fmt "(default BGP forwarding)"
  | _ ->
      Format.fprintf fmt "@[<v>%a@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt " +@ ")
           pp_clause)
        t
