open Sdx_net

type t = {
  pool : Prefix.t;
  size : int;
  mutable next : int;
}

let vmac_base = 0x02_00_00_00_00_00

let create ?(pool = Prefix.of_string "172.16.0.0/12") () =
  let size = 1 lsl (32 - Prefix.length pool) in
  { pool; size; next = 0 }

let fresh t =
  (* Skip the network address itself so a VNH is never all-zero in the
     host part. *)
  if t.next + 1 >= t.size then failwith "Vnh.fresh: pool exhausted"
  else begin
    t.next <- t.next + 1;
    let ip = Prefix.host t.pool t.next in
    let mac = Mac.of_int (vmac_base + t.next) in
    (ip, mac)
  end

let allocated t = t.next
let reset t = t.next <- 0
let is_virtual t ip = Prefix.mem ip t.pool
