(** Participant policies, written against the participant's virtual SDX
    switch (§3.1).

    A policy is a parallel composition of clauses.  Each clause filters
    packets with a header predicate, optionally rewrites headers, and
    hands the packet to a target: a peer's virtual switch ([Peer]), one
    of the participant's own physical ports ([Phys], inbound policies
    only), BGP default forwarding re-resolved after the rewrite
    ([Default], used by wide-area load balancing), or [Drop].

    Traffic matched by no clause follows the participant's BGP default
    (outbound) or is delivered on the best-route port (inbound) — clauses
    override the default rather than replace it (§3.2). *)

open Sdx_policy
open Sdx_bgp

type target =
  | Peer of Asn.t
  | Phys of int  (** participant-local port index *)
  | Redirect of Asn.t
      (** steer to another participant's port {e without} the BGP
          reachability filter — the middlebox redirection of §2: the
          target hosts a middlebox, it does not announce routes *)
  | Default
  | Drop

type clause = { pred : Pred.t; mods : Mods.t; target : target }

type t = clause list

val empty : t

val clause : ?mods:Mods.t -> Pred.t -> target -> clause

val fwd : Pred.t -> target -> clause
(** [fwd pred t] is [clause pred t] with no header rewrites — the paper's
    [match(...) >> fwd(...)]. *)

val rewrite : Pred.t -> Mods.t -> clause
(** [rewrite pred mods] rewrites headers and re-applies default
    forwarding — the paper's [match(...) >> mod(...)]. *)

val steer : Pred.t -> Asn.t -> clause
(** [steer pred mbox] redirects matched traffic to the participant
    hosting a middlebox — the paper's
    [match(srcip={YouTubePrefixes}) >> fwd(E1)]. *)

val targets : t -> target list
(** Distinct targets, in first-appearance order. *)

val peers : t -> Asn.t list
(** Distinct peer ASes the policy forwards to. *)

val clause_count : t -> int
val pp : Format.formatter -> t -> unit
