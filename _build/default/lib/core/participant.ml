open Sdx_net
open Sdx_bgp

type port = { index : int; mac : Mac.t; ip : Ipv4.t }

type t = {
  asn : Asn.t;
  ports : port list;
  inbound : Ppolicy.t;
  outbound : Ppolicy.t;
  originated : Prefix.t list;
}

let make ~asn ~ports ?(inbound = Ppolicy.empty) ?(outbound = Ppolicy.empty)
    ?(originated = []) () =
  let ports = List.mapi (fun index (mac, ip) -> { index; mac; ip }) ports in
  { asn; ports; inbound; outbound; originated }

let is_remote t = t.ports = []

let port t index =
  match List.find_opt (fun p -> p.index = index) t.ports with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Participant.port: %s has no port %d"
           (Asn.to_string t.asn) index)

let port_with_ip t ip = List.find_opt (fun p -> Ipv4.equal p.ip ip) t.ports

let pp fmt t =
  Format.fprintf fmt "@[<v>%a (%d port(s))%s@,  inbound: %a@,  outbound: %a@]"
    Asn.pp t.asn (List.length t.ports)
    (if is_remote t then " [remote]" else "")
    Ppolicy.pp t.inbound Ppolicy.pp t.outbound
