lib/core/policy_parser.mli: Format Ppolicy Sdx_policy
