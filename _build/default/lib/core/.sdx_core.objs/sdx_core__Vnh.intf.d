lib/core/vnh.mli: Ipv4 Mac Prefix Sdx_net
