lib/core/participant.mli: Asn Format Ipv4 Mac Ppolicy Prefix Sdx_bgp Sdx_net
