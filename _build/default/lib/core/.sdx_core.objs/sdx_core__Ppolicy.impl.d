lib/core/ppolicy.ml: Asn Format List Mods Pred Sdx_bgp Sdx_policy
