lib/core/vnh.ml: Mac Prefix Sdx_net
