lib/core/fec.mli: Prefix Sdx_net
