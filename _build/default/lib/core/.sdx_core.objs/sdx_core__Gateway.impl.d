lib/core/gateway.ml: Asn Compile Config Fsm Hashtbl Ipv4 List Participant Peer Route_server Runtime Sdx_bgp Sdx_net Update Wire
