lib/core/config.mli: Asn Ipv4 Participant Ppolicy Prefix Route_server Sdx_bgp Sdx_net
