lib/core/ppolicy.mli: Asn Format Mods Pred Sdx_bgp Sdx_policy
