lib/core/runtime.mli: Asn Classifier Compile Config Ppolicy Prefix Route Rpki Sdx_arp Sdx_bgp Sdx_net Sdx_openflow Sdx_policy Update
