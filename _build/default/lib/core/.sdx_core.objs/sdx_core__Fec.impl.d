lib/core/fec.ml: Fun Hashtbl List Option Prefix Sdx_net
