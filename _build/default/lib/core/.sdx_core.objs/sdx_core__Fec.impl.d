lib/core/fec.ml: Hashtbl List Option Prefix Sdx_net
