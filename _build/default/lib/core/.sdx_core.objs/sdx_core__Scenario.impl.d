lib/core/scenario.ml: Asn Buffer Config Format Fun Hashtbl Ipv4 List Mac Participant Policy_parser Ppolicy Prefix Printf Route Route_server Sdx_bgp Sdx_net String
