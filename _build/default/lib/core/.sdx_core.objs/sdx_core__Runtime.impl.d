lib/core/runtime.ml: Asn Classifier Compile Config Ipv4 List Logs Option Participant Prefix Route Route_server Rpki Sdx_bgp Sdx_net Sdx_openflow Sdx_policy Unix Update Vnh
