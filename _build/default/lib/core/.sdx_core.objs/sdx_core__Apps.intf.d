lib/core/apps.mli: Asn Ipv4 Ppolicy Pred Prefix Route_server Sdx_bgp Sdx_net Sdx_policy
