lib/core/policy_parser.ml: Asn Format Ipv4 List Mac Mods Option Pattern Ppolicy Pred Prefix Printf Sdx_bgp Sdx_net Sdx_policy String
