lib/core/participant.ml: Asn Format Ipv4 List Mac Ppolicy Prefix Printf Sdx_bgp Sdx_net
