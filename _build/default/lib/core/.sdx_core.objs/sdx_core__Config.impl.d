lib/core/config.ml: Asn Hashtbl Ipv4 List Option Participant Ppolicy Printf Route Route_server Sdx_bgp Sdx_net Update
