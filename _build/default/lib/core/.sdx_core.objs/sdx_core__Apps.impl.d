lib/core/apps.ml: As_path_regex List Mods Ppolicy Pred Prefix Route_server Sdx_bgp Sdx_net Sdx_policy
