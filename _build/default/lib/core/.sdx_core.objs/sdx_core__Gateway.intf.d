lib/core/gateway.mli: Asn Ipv4 Peer Runtime Sdx_bgp Sdx_net
