lib/core/compile.mli: Asn Classifier Config Ipv4 Mac Prefix Route Sdx_arp Sdx_bgp Sdx_net Sdx_policy Vnh
