open Sdx_net

(* Signature of a prefix: the indices of the sets containing it, in
   ascending order (built that way by iterating sets in index order). *)
let signatures ~sets =
  let memberships : (Prefix.t, int list) Hashtbl.t = Hashtbl.create 1024 in
  List.iteri
    (fun i set ->
      Prefix.Set.iter
        (fun p ->
          let cur = Option.value (Hashtbl.find_opt memberships p) ~default:[] in
          Hashtbl.replace memberships p (i :: cur))
        set)
    sets;
  memberships

let partition ~sets ~default_key =
  let memberships = signatures ~sets in
  let groups : (int list * int, Prefix.t list) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun p membership ->
      let key = (membership, default_key p) in
      let cur = Option.value (Hashtbl.find_opt groups key) ~default:[] in
      Hashtbl.replace groups key (p :: cur))
    memberships;
  let all = Hashtbl.fold (fun _ prefixes acc -> List.sort Prefix.compare prefixes :: acc) groups [] in
  (* Deterministic order: by the first (smallest) prefix of each group. *)
  List.sort
    (fun a b ->
      match (a, b) with
      | p :: _, q :: _ -> Prefix.compare p q
      | _ -> 0)
    all

let group_count ~sets ~default_key =
  let memberships = signatures ~sets in
  let keys = Hashtbl.create 256 in
  Hashtbl.iter
    (fun p membership -> Hashtbl.replace keys (membership, default_key p) ())
    memberships;
  Hashtbl.length keys

let is_valid_partition ~sets ~default_key groups =
  let union =
    List.fold_left (fun acc s -> Prefix.Set.union acc s) Prefix.Set.empty sets
  in
  let covered =
    List.fold_left
      (fun acc g -> List.fold_left (fun acc p -> Prefix.Set.add p acc) acc g)
      Prefix.Set.empty groups
  in
  let total = List.fold_left (fun n g -> n + List.length g) 0 groups in
  let disjoint_cover =
    Prefix.Set.equal union covered && total = Prefix.Set.cardinal covered
  in
  let consistent g =
    match g with
    | [] -> false
    | first :: rest ->
        List.for_all
          (fun set ->
            let in_set = Prefix.Set.mem first set in
            List.for_all (fun p -> Prefix.Set.mem p set = in_set) rest)
          sets
        && List.for_all (fun p -> default_key p = default_key first) rest
  in
  let signature g =
    match g with
    | [] -> ([], 0)
    | first :: _ ->
        ( List.filter_map Fun.id
            (List.mapi
               (fun i set ->
                 if Prefix.Set.mem first set then Some i else None)
               sets),
          default_key first )
  in
  let maximal =
    (* No two groups share a signature — otherwise they should be one. *)
    let sigs = List.map signature groups in
    List.length (List.sort_uniq compare sigs) = List.length sigs
  in
  disjoint_cover && List.for_all consistent groups && maximal
