(** The BGP decision process: a deterministic total preference order over
    routes to the same prefix. *)

val prefer : Route.t -> Route.t -> int
(** [prefer a b > 0] when [a] is the better route.  Steps, in order:
    higher local preference, shorter AS path, lower origin
    ([Igp] < [Egp] < [Incomplete]), lower MED, then lowest neighbor ASN
    and lowest next-hop address as deterministic tie-breakers. *)

val best : Route.t list -> Route.t option
(** The most preferred route of a candidate set. *)

val sort : Route.t list -> Route.t list
(** Candidates from most to least preferred. *)
