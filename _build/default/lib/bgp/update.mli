(** BGP update messages as seen by the route server. *)

open Sdx_net

type t =
  | Announce of Route.t
  | Withdraw of { peer : Asn.t; prefix : Prefix.t }

val announce : Route.t -> t
val withdraw : peer:Asn.t -> Prefix.t -> t

val prefix : t -> Prefix.t
val peer : t -> Asn.t
(** The participant the update came from. *)

val is_announce : t -> bool
val pp : Format.formatter -> t -> unit
