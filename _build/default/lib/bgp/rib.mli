(** Routing information bases.

    An [Adj_in] holds the routes learned from one peer; the route server
    keeps one per participant (Figure 1b's "Input RIBs") and derives the
    per-participant local RIBs from them. *)

open Sdx_net

module Adj_in : sig
  type t

  val create : unit -> t
  val add : t -> Route.t -> unit
  val remove : t -> Prefix.t -> unit
  val find : t -> Prefix.t -> Route.t option
  val cardinal : t -> int
  val prefixes : t -> Prefix.t list
  val fold : (Prefix.t -> Route.t -> 'a -> 'a) -> t -> 'a -> 'a
end

module Loc : sig
  (** A participant's local RIB: its best route per prefix, as computed
      and re-advertised by the route server. *)

  type t

  val create : unit -> t
  val set : t -> Prefix.t -> Route.t -> unit
  val clear : t -> Prefix.t -> unit
  val find : t -> Prefix.t -> Route.t option
  val lookup : t -> Ipv4.t -> (Prefix.t * Route.t) option
  (** Longest-prefix match, as a forwarding table would do. *)

  val cardinal : t -> int
  val fold : (Prefix.t -> Route.t -> 'a -> 'a) -> t -> 'a -> 'a
end
