(** Minimal BGP session state, enough to model the table-transfer bursts
    that session resets inject into update traces (the paper discards
    those updates from its Table 1 datasets, citing Zhang et al.). *)

open Sdx_net

type state = Idle | Established

type t

val create : peer:Asn.t -> t
val peer : t -> Asn.t
val state : t -> state

val establish : t -> unit

val reset : t -> Prefix.t list -> Update.t list
(** [reset s announced] tears the session down and returns the implicit
    withdrawals for every prefix the peer had announced. *)

val table_transfer : t -> Route.t list -> Update.t list
(** Re-announcements sent when the session comes back up; marks the
    session established. *)

val is_transfer_burst : updates:Update.t list -> table_size:int -> bool
(** Heuristic used when cleaning traces: a burst of announcements from a
    single peer covering at least 90% of its table is treated as a
    session-reset table transfer rather than organic churn. *)
