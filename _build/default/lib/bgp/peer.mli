(** A route-server-side BGP session endpoint: the glue between the wire
    format, the session FSM, and the route server.

    The transport is abstract — callers push received bytes in with
    {!feed} (any fragmentation; messages are reassembled from the length
    header) and drain bytes to transmit with {!pending_output}.  Decoded
    UPDATE messages surface as route-server updates attributed to the
    session's peer. *)


type t

val create : local:Wire.open_msg -> peer_asn:Asn.t -> t
(** [local] describes this side's OPEN parameters; [peer_asn] is the
    participant the session belongs to (learned routes are attributed to
    it). *)

val state : t -> Fsm.state

val connect : t -> unit
(** Start the session: after the (modeled) TCP connection comes up, the
    local OPEN is queued for transmission. *)

val feed : t -> bytes -> (Update.t list, string) result
(** Append received transport bytes (any framing) and process every
    complete message: FSM transitions run, replies (KEEPALIVE,
    NOTIFICATION) are queued, and the route-server updates implied by
    UPDATE messages are returned.  An error tears the session down. *)

val send_update : t -> Update.t -> unit
(** Queue an outgoing UPDATE (a re-advertisement toward the peer).
    Silently ignored unless the session is established. *)

val keepalive_due : t -> unit
(** The keepalive timer fired: queue a KEEPALIVE if appropriate. *)

val hold_expired : t -> unit
(** The hold timer fired: tear the session down with a notification. *)

val pending_output : t -> bytes list
(** Drain the bytes to transmit, in order. *)

val flush_requested : t -> bool
(** True once the FSM has asked for the peer's routes to be withdrawn
    (session loss after establishment); reading it clears the flag, and
    {!Session.reset} materializes the withdrawals. *)

val peer_asn : t -> Asn.t

val remote_open : t -> Wire.open_msg option
(** The peer's OPEN parameters, once received. *)
