(** BGP routes: a destination prefix plus the path attributes the decision
    process and the SDX runtime consume. *)

open Sdx_net

type origin = Igp | Egp | Incomplete

type t = {
  prefix : Prefix.t;
  next_hop : Ipv4.t;  (** the advertising router's interface address *)
  as_path : Asn.t list;  (** nearest AS first, origin AS last *)
  local_pref : int;
  med : int;
  origin : origin;
  communities : (int * int) list;
  learned_from : Asn.t;  (** the IXP peer that announced this route *)
}

val make :
  prefix:Prefix.t ->
  next_hop:Ipv4.t ->
  as_path:Asn.t list ->
  ?local_pref:int ->
  ?med:int ->
  ?origin:origin ->
  ?communities:(int * int) list ->
  learned_from:Asn.t ->
  unit ->
  t
(** [local_pref] defaults to 100, [med] to 0, [origin] to [Igp]. *)

val origin_as : t -> Asn.t option
(** The AS that originated the prefix (last element of the AS path). *)

val as_path_string : t -> string
(** AS path as space-separated plain numbers, e.g. ["3356 1299 43515"] —
    the form AS-path regular expressions match against. *)

val prepend : Asn.t -> t -> t
(** Prepends an AS to the path (as done when re-advertising). *)

val with_next_hop : Ipv4.t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
