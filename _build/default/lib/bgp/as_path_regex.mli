(** AS-path regular expressions, used by SDX policies that group traffic
    on BGP attributes (§3.2): e.g. [".*43515$"] selects all routes whose
    path ends at AS 43515. *)

type t

val compile : string -> t
(** POSIX-style regular expression over the route's AS-path rendered as
    space-separated AS numbers.  Anchors [^]/[$] refer to the whole path.
    @raise Invalid_argument on a malformed expression. *)

val matches : t -> Route.t -> bool

val filter : t -> Route.t list -> Route.t list
(** Routes whose AS path matches. *)

val source : t -> string
(** The original expression, for display. *)
