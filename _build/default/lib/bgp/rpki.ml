open Sdx_net

type validity = Valid | Invalid | Not_found

type roa = { max_length : int; origin : Asn.t }
type t = { mutable roas : roa list Prefix_trie.t }

let create () = { roas = Prefix_trie.empty }

let add_roa t ~prefix ?max_length origin =
  let max_length = Option.value max_length ~default:(Prefix.length prefix) in
  if max_length < Prefix.length prefix || max_length > 32 then
    invalid_arg
      (Printf.sprintf "Rpki.add_roa: max_length %d out of range for %s"
         max_length (Prefix.to_string prefix));
  t.roas <-
    Prefix_trie.update prefix
      (fun existing ->
        Some ({ max_length; origin } :: Option.value existing ~default:[]))
      t.roas

let roa_count t = Prefix_trie.fold (fun _ rs n -> n + List.length rs) t.roas 0

(* Every ROA whose prefix covers the announced prefix is relevant. *)
let covering t prefix =
  Prefix_trie.matches (Prefix.network prefix) t.roas
  |> List.filter (fun (roa_prefix, _) -> Prefix.subset prefix roa_prefix)
  |> List.concat_map snd

let validate_origin t ~prefix asn =
  match covering t prefix with
  | [] -> Not_found
  | roas ->
      if
        List.exists
          (fun roa ->
            Asn.equal roa.origin asn && Prefix.length prefix <= roa.max_length)
          roas
      then Valid
      else Invalid

let validate t (route : Route.t) =
  match Route.origin_as route with
  | Some origin -> validate_origin t ~prefix:route.prefix origin
  | None -> if covering t route.prefix = [] then Not_found else Invalid

let pp_validity fmt = function
  | Valid -> Format.pp_print_string fmt "valid"
  | Invalid -> Format.pp_print_string fmt "invalid"
  | Not_found -> Format.pp_print_string fmt "not-found"
