type t = int

let of_int n =
  if n < 0 || n > 0xFFFF_FFFF then
    invalid_arg (Printf.sprintf "Asn.of_int: %d out of range" n)
  else n

let to_int t = t
let compare = Int.compare
let equal = Int.equal
let hash t = Hashtbl.hash t
let to_string t = Printf.sprintf "AS%d" t
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
