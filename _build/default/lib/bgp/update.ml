open Sdx_net

type t =
  | Announce of Route.t
  | Withdraw of { peer : Asn.t; prefix : Prefix.t }

let announce r = Announce r
let withdraw ~peer prefix = Withdraw { peer; prefix }

let prefix = function
  | Announce r -> r.Route.prefix
  | Withdraw { prefix; _ } -> prefix

let peer = function
  | Announce r -> r.Route.learned_from
  | Withdraw { peer; _ } -> peer

let is_announce = function
  | Announce _ -> true
  | Withdraw _ -> false

let pp fmt = function
  | Announce r -> Format.fprintf fmt "announce %a" Route.pp r
  | Withdraw { peer; prefix } ->
      Format.fprintf fmt "withdraw %a from %a" Prefix.pp prefix Asn.pp peer
