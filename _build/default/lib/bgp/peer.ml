
type t = {
  local : Wire.open_msg;
  peer_asn : Asn.t;
  fsm : Fsm.t;
  rx : Buffer.t;  (* unparsed received bytes *)
  mutable tx : bytes list;  (* reversed output queue *)
  mutable flush : bool;
  mutable remote : Wire.open_msg option;
}

let create ~local ~peer_asn =
  {
    local;
    peer_asn;
    fsm = Fsm.create ();
    rx = Buffer.create 256;
    tx = [];
    flush = false;
    remote = None;
  }

let state t = Fsm.state t.fsm
let peer_asn t = t.peer_asn
let remote_open t = t.remote

let transmit t msg = t.tx <- Wire.encode msg :: t.tx

let pending_output t =
  let out = List.rev t.tx in
  t.tx <- [];
  out

let flush_requested t =
  let f = t.flush in
  t.flush <- false;
  f

let perform t action =
  match action with
  | Fsm.Send_open -> transmit t (Wire.Open t.local)
  | Fsm.Send_keepalive -> transmit t Wire.Keepalive
  | Fsm.Send_notification { code; subcode } ->
      transmit t (Wire.Notification { code; subcode })
  | Fsm.Flush_routes -> t.flush <- true
  | Fsm.Start_connection | Fsm.Drop_connection ->
      (* The transport is the caller's; nothing to do in this model. *)
      ()

let event t e = List.iter (perform t) (Fsm.handle t.fsm e)

let connect t =
  event t Fsm.Manual_start;
  (* The in-memory transport connects instantly. *)
  event t Fsm.Tcp_connected

let keepalive_due t = event t Fsm.Keepalive_timer_expired
let hold_expired t = event t Fsm.Hold_timer_expired

let send_update t update =
  if Fsm.state t.fsm = Fsm.Established then transmit t (Wire.of_update update)

(* Extract one complete message from the head of [rx], if present: the
   declared length lives at bytes 16-17. *)
let take_message t =
  let len = Buffer.length t.rx in
  if len < 19 then None
  else
    let declared =
      (Char.code (Buffer.nth t.rx 16) lsl 8) lor Char.code (Buffer.nth t.rx 17)
    in
    if declared < 19 then Some (Error "declared message length below 19")
    else if len < declared then None
    else begin
      let msg = Bytes.of_string (String.sub (Buffer.contents t.rx) 0 declared) in
      let rest = String.sub (Buffer.contents t.rx) declared (len - declared) in
      Buffer.clear t.rx;
      Buffer.add_string t.rx rest;
      Some (Ok msg)
    end

let handle_message t msg =
  match msg with
  | Wire.Open o ->
      t.remote <- Some o;
      event t (Fsm.Open_received o);
      []
  | Wire.Keepalive ->
      event t Fsm.Keepalive_received;
      []
  | Wire.Notification _ ->
      event t Fsm.Notification_received;
      []
  | Wire.Update _ as u ->
      let was_established = Fsm.state t.fsm = Fsm.Established in
      (* Before establishment this is an FSM error; the machine sends a
         notification and tears down. *)
      event t Fsm.Update_received;
      if was_established then Wire.to_updates ~peer:t.peer_asn u else []

let feed t data =
  Buffer.add_bytes t.rx data;
  let rec drain acc =
    match take_message t with
    | None -> Ok (List.rev acc)
    | Some (Error e) ->
        event t Fsm.Manual_stop;
        Error e
    | Some (Ok raw) -> (
        match Wire.decode raw with
        | Error e ->
            event t Fsm.Manual_stop;
            Error e
        | Ok msg -> drain (List.rev_append (handle_message t msg) acc))
  in
  drain []
