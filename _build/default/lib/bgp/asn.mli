(** Autonomous system numbers. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument on negative or >32-bit values. *)

val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
