(** RFC 4271 BGP message encoding and decoding — the bytes a route
    server exchanges with participant border routers over their BGP
    sessions.  Covers the attribute set this SDX uses: ORIGIN, AS_PATH,
    NEXT_HOP, MULTI_EXIT_DISC, LOCAL_PREF, and RFC 1997 COMMUNITIES.

    Two-byte AS number encoding is used; AS numbers above 65535 are
    substituted with AS_TRANS (23456) as RFC 6793 prescribes for
    non-4-octet-capable sessions. *)

open Sdx_net

type open_msg = { asn : Asn.t; hold_time : int; bgp_id : Ipv4.t }

type attrs = {
  origin : Route.origin;
  as_path : Asn.t list;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  communities : (int * int) list;
}

type update_msg = {
  withdrawn : Prefix.t list;
  attrs : attrs option;  (** [None] iff the message announces nothing *)
  nlri : Prefix.t list;
}

type t =
  | Open of open_msg
  | Update of update_msg
  | Keepalive
  | Notification of { code : int; subcode : int }

val as_trans : Asn.t
(** AS 23456. *)

val encode : t -> bytes
(** The full message, marker and length included. *)

val decode : bytes -> (t, string) result
(** Decodes exactly one message; validates the marker, declared length,
    and attribute structure. *)

val of_update : Update.t -> t
(** The UPDATE message carrying one route-server update. *)

val to_updates : peer:Asn.t -> t -> Update.t list
(** The route-server updates an incoming message from [peer] implies
    (empty for OPEN/KEEPALIVE/NOTIFICATION). *)

val pp : Format.formatter -> t -> unit
