open Sdx_net

type state = Idle | Established
type t = { peer : Asn.t; mutable state : state }

let create ~peer = { peer; state = Idle }
let peer t = t.peer
let state t = t.state
let establish t = t.state <- Established

let reset t announced =
  t.state <- Idle;
  List.map (fun prefix -> Update.withdraw ~peer:t.peer prefix) announced

let table_transfer t routes =
  t.state <- Established;
  List.map
    (fun (r : Route.t) -> Update.announce { r with learned_from = t.peer })
    routes

let is_transfer_burst ~updates ~table_size =
  if table_size = 0 then false
  else
    let announced =
      List.fold_left
        (fun acc u ->
          if Update.is_announce u then Prefix.Set.add (Update.prefix u) acc
          else acc)
        Prefix.Set.empty updates
    in
    float_of_int (Prefix.Set.cardinal announced)
    >= 0.9 *. float_of_int table_size
