(** The BGP session finite-state machine (RFC 4271 §8, simplified to the
    events a route-server deployment sees).  Pure transition logic: each
    event yields the actions the host should perform (send a message,
    manage the TCP connection, flush the peer's routes), so it is
    directly testable and the I/O lives elsewhere. *)

type state = Idle | Connect | Active | Open_sent | Open_confirm | Established

type event =
  | Manual_start
  | Manual_stop
  | Tcp_connected
  | Tcp_failed
  | Connect_retry_expired
  | Open_received of Wire.open_msg
  | Keepalive_received
  | Update_received
  | Notification_received
  | Hold_timer_expired
  | Keepalive_timer_expired

type action =
  | Start_connection
  | Drop_connection
  | Send_open
  | Send_keepalive
  | Send_notification of { code : int; subcode : int }
  | Flush_routes
      (** withdraw everything learned from the peer (the implicit
          withdrawals {!Session.reset} materializes) *)

type t

val create : unit -> t
val state : t -> state

val handle : t -> event -> action list
(** Applies one event, returning the actions in execution order.
    Unexpected events follow RFC 4271's FSM-error handling: a
    notification (code 5) and a fall back to [Idle]. *)

val connect_retries : t -> int
(** How many times the connection has been (re)initiated. *)

val pp_state : Format.formatter -> state -> unit
