(** Peering policy builders for the route server.

    Real IXP route servers let participants control route distribution
    with well-known and action communities — exactly the "indirect,
    obscure mechanisms" the paper's introduction contrasts the SDX with,
    and the baseline an SDX must remain compatible with.  This module
    provides the standard conventions:

    - the static export matrix ([open_policy], [bilateral], [deny_pairs]);
    - per-route action communities: [(0, asn)] "do not announce to
      [asn]", [(rs_asn, asn)] "announce only to [asn]" (once any
      announce-only community is present, everything else is filtered),
      and RFC 1997 NO_EXPORT which blocks re-advertisement entirely. *)


type matrix = advertiser:Asn.t -> receiver:Asn.t -> bool

val open_policy : matrix
(** Everyone exchanges routes with everyone (the default). *)

val bilateral : (Asn.t * Asn.t) list -> matrix
(** Only the listed pairs exchange routes (in both directions). *)

val deny_pairs : (Asn.t * Asn.t) list -> matrix
(** Open, except the listed pairs (in both directions). *)

val no_export : int * int
(** RFC 1997 NO_EXPORT (65535, 65281). *)

val do_not_announce_to : Asn.t -> int * int
(** The [(0, asn)] action community. *)

val announce_only_to : rs_asn:Asn.t -> Asn.t -> int * int
(** The [(rs_asn, asn)] action community. *)

val community_filter : rs_asn:Asn.t -> Route.t -> receiver:Asn.t -> bool
(** The per-route filter implementing the conventions above, to pass as
    {!Route_server.create}'s [route_filter]. *)

(* Convenience predicates used by tests and tooling. *)

val blocked_by_no_export : Route.t -> bool
val tag : Route.t -> (int * int) list -> Route.t
(** Returns the route with the communities appended. *)
