type state = Idle | Connect | Active | Open_sent | Open_confirm | Established

type event =
  | Manual_start
  | Manual_stop
  | Tcp_connected
  | Tcp_failed
  | Connect_retry_expired
  | Open_received of Wire.open_msg
  | Keepalive_received
  | Update_received
  | Notification_received
  | Hold_timer_expired
  | Keepalive_timer_expired

type action =
  | Start_connection
  | Drop_connection
  | Send_open
  | Send_keepalive
  | Send_notification of { code : int; subcode : int }
  | Flush_routes

type t = { mutable state : state; mutable retries : int }

let create () = { state = Idle; retries = 0 }
let state t = t.state
let connect_retries t = t.retries

(* Error codes used below: 4 = hold timer expired, 5 = FSM error. *)

let handle t event =
  let was_established = t.state = Established in
  let goto s actions =
    t.state <- s;
    actions
  in
  let teardown ?(notify = None) () =
    let notification =
      match notify with
      | Some (code, subcode) -> [ Send_notification { code; subcode } ]
      | None -> []
    in
    goto Idle
      (notification @ [ Drop_connection ]
      @ if was_established then [ Flush_routes ] else [])
  in
  match (t.state, event) with
  (* Session bring-up. *)
  | Idle, Manual_start ->
      t.retries <- t.retries + 1;
      goto Connect [ Start_connection ]
  | Connect, Tcp_connected | Active, Tcp_connected -> goto Open_sent [ Send_open ]
  | Connect, Tcp_failed -> goto Active []
  | (Connect | Active), Connect_retry_expired ->
      t.retries <- t.retries + 1;
      goto Connect [ Start_connection ]
  | Open_sent, Open_received _ -> goto Open_confirm [ Send_keepalive ]
  | Open_confirm, Keepalive_received -> goto Established []
  (* Steady state. *)
  | Established, Update_received | Established, Keepalive_received ->
      goto Established []
  | Established, Keepalive_timer_expired -> goto Established [ Send_keepalive ]
  (* Orderly and failure teardown. *)
  | _, Manual_stop -> teardown ()
  | _, Notification_received -> teardown ()
  | _, Tcp_failed -> teardown ()
  | (Open_sent | Open_confirm | Established), Hold_timer_expired ->
      teardown ~notify:(Some (4, 0)) ()
  | Idle, (Tcp_connected | Connect_retry_expired | Hold_timer_expired
          | Keepalive_timer_expired | Keepalive_received | Update_received
          | Open_received _) ->
      (* Events in Idle are ignored rather than errors. *)
      goto Idle []
  (* Everything else is an FSM error. *)
  | _, _ -> teardown ~notify:(Some (5, 0)) ()

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Idle -> "Idle"
    | Connect -> "Connect"
    | Active -> "Active"
    | Open_sent -> "OpenSent"
    | Open_confirm -> "OpenConfirm"
    | Established -> "Established")
