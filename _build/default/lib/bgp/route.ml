open Sdx_net

type origin = Igp | Egp | Incomplete

type t = {
  prefix : Prefix.t;
  next_hop : Ipv4.t;
  as_path : Asn.t list;
  local_pref : int;
  med : int;
  origin : origin;
  communities : (int * int) list;
  learned_from : Asn.t;
}

let make ~prefix ~next_hop ~as_path ?(local_pref = 100) ?(med = 0)
    ?(origin = Igp) ?(communities = []) ~learned_from () =
  { prefix; next_hop; as_path; local_pref; med; origin; communities; learned_from }

let origin_as t =
  match List.rev t.as_path with
  | [] -> None
  | last :: _ -> Some last

let as_path_string t =
  String.concat " " (List.map (fun a -> string_of_int (Asn.to_int a)) t.as_path)

let prepend asn t = { t with as_path = asn :: t.as_path }
let with_next_hop next_hop t = { t with next_hop }
let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp_origin fmt = function
  | Igp -> Format.pp_print_string fmt "IGP"
  | Egp -> Format.pp_print_string fmt "EGP"
  | Incomplete -> Format.pp_print_string fmt "?"

let pp fmt t =
  Format.fprintf fmt "@[<h>%a via %a path=[%s] lp=%d med=%d %a from %a@]"
    Prefix.pp t.prefix Ipv4.pp t.next_hop (as_path_string t) t.local_pref t.med
    pp_origin t.origin Asn.pp t.learned_from
