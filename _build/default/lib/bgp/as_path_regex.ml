type t = { source : string; re : Re.re }

let compile source =
  match Re.Posix.compile_pat source with
  | re -> { source; re }
  | exception Re.Posix.Parse_error ->
      invalid_arg (Printf.sprintf "As_path_regex.compile: bad expression %S" source)
  | exception Re.Posix.Not_supported ->
      invalid_arg
        (Printf.sprintf "As_path_regex.compile: unsupported construct in %S" source)

let matches t route = Re.execp t.re (Route.as_path_string route)
let filter t routes = List.filter (matches t) routes
let source t = t.source
