type matrix = advertiser:Asn.t -> receiver:Asn.t -> bool

let open_policy ~advertiser:_ ~receiver:_ = true

let normalize pairs =
  List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) pairs

let bilateral pairs =
  let allowed = normalize pairs in
  fun ~advertiser ~receiver ->
    List.exists
      (fun (a, b) -> Asn.equal a advertiser && Asn.equal b receiver)
      allowed

let deny_pairs pairs =
  let denied = normalize pairs in
  fun ~advertiser ~receiver ->
    not
      (List.exists
         (fun (a, b) -> Asn.equal a advertiser && Asn.equal b receiver)
         denied)

let no_export = (65535, 65281)
let do_not_announce_to asn = (0, Asn.to_int asn)
let announce_only_to ~rs_asn asn = (Asn.to_int rs_asn, Asn.to_int asn)

let blocked_by_no_export (route : Route.t) =
  List.mem no_export route.communities

let community_filter ~rs_asn (route : Route.t) ~receiver =
  if blocked_by_no_export route then false
  else if List.mem (0, Asn.to_int receiver) route.communities then false
  else
    let announce_only =
      List.filter_map
        (fun (high, low) ->
          if high = Asn.to_int rs_asn then Some low else None)
        route.communities
    in
    announce_only = [] || List.mem (Asn.to_int receiver) announce_only

let tag (route : Route.t) communities =
  { route with communities = route.communities @ communities }
