(** RPKI-style origin validation (§3.2: before originating a BGP route on
    a participant's behalf, "the SDX would verify that AS D indeed owns
    the IP prefix (e.g., using the RPKI)").

    A Route Origin Authorization (ROA) authorizes one AS to originate a
    prefix and, optionally, more-specific prefixes up to a maximum
    length.  Validation follows RFC 6811: a route is [Valid] when some
    covering ROA matches its origin AS and length, [Invalid] when covering
    ROAs exist but none matches, and [Not_found] when no ROA covers it. *)

open Sdx_net

type validity = Valid | Invalid | Not_found

type t

val create : unit -> t

val add_roa : t -> prefix:Prefix.t -> ?max_length:int -> Asn.t -> unit
(** [max_length] defaults to the prefix's own length.
    @raise Invalid_argument when [max_length] is shorter than the
    prefix or longer than 32. *)

val roa_count : t -> int

val validate_origin : t -> prefix:Prefix.t -> Asn.t -> validity
(** Validity of [asn] originating [prefix]. *)

val validate : t -> Route.t -> validity
(** Validity of a route, judged by its origin AS (the last AS-path
    element); routes with an empty AS path are [Invalid] when covered. *)

val pp_validity : Format.formatter -> validity -> unit
