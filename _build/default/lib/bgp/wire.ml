open Sdx_net

type open_msg = { asn : Asn.t; hold_time : int; bgp_id : Ipv4.t }

type attrs = {
  origin : Route.origin;
  as_path : Asn.t list;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  communities : (int * int) list;
}

type update_msg = {
  withdrawn : Prefix.t list;
  attrs : attrs option;
  nlri : Prefix.t list;
}

type t =
  | Open of open_msg
  | Update of update_msg
  | Keepalive
  | Notification of { code : int; subcode : int }

let as_trans = Asn.of_int 23456
let header_len = 19
let marker_byte = '\xff'

(* Message type codes. *)
let t_open = 1
let t_update = 2
let t_notification = 3
let t_keepalive = 4

(* Path attribute type codes. *)
let a_origin = 1
let a_as_path = 2
let a_next_hop = 3
let a_med = 4
let a_local_pref = 5
let a_communities = 8

(* ------------------------------------------------------------------ *)
(* A tiny growable byte buffer.                                        *)

module B = struct
  let u8 buf v = Buffer.add_uint8 buf (v land 0xFF)

  let u16 buf v =
    u8 buf (v lsr 8);
    u8 buf v

  let u32 buf v =
    u16 buf (v lsr 16);
    u16 buf (v land 0xFFFF)
end

let two_byte_asn asn =
  let v = Asn.to_int asn in
  if v > 0xFFFF then Asn.to_int as_trans else v

(* NLRI encoding: one length byte then the minimal prefix bytes. *)
let encode_prefix buf p =
  let len = Prefix.length p in
  B.u8 buf len;
  let network = Ipv4.to_int (Prefix.network p) in
  for i = 0 to ((len + 7) / 8) - 1 do
    B.u8 buf ((network lsr (8 * (3 - i))) land 0xFF)
  done

let encode_attrs buf (a : attrs) =
  let attr ?(flags = 0x40) type_code payload =
    B.u8 buf flags;
    B.u8 buf type_code;
    B.u8 buf (Buffer.length payload);
    Buffer.add_buffer buf payload
  in
  let payload f =
    let b = Buffer.create 8 in
    f b;
    b
  in
  attr a_origin
    (payload (fun b ->
         B.u8 b
           (match a.origin with
           | Route.Igp -> 0
           | Route.Egp -> 1
           | Route.Incomplete -> 2)));
  attr a_as_path
    (payload (fun b ->
         match a.as_path with
         | [] -> ()
         | path ->
             B.u8 b 2 (* AS_SEQUENCE *);
             B.u8 b (List.length path);
             List.iter (fun asn -> B.u16 b (two_byte_asn asn)) path));
  attr a_next_hop (payload (fun b -> B.u32 b (Ipv4.to_int a.next_hop)));
  Option.iter
    (fun med -> attr ~flags:0x80 a_med (payload (fun b -> B.u32 b med)))
    a.med;
  Option.iter
    (fun lp -> attr a_local_pref (payload (fun b -> B.u32 b lp)))
    a.local_pref;
  if a.communities <> [] then
    attr ~flags:0xC0 a_communities
      (payload (fun b ->
           List.iter
             (fun (hi, lo) ->
               B.u16 b hi;
               B.u16 b lo)
             a.communities))

let encode msg =
  let body = Buffer.create 64 in
  let type_code =
    match msg with
    | Open o ->
        B.u8 body 4 (* version *);
        B.u16 body (two_byte_asn o.asn);
        B.u16 body o.hold_time;
        B.u32 body (Ipv4.to_int o.bgp_id);
        B.u8 body 0 (* no optional parameters *);
        t_open
    | Update u ->
        let withdrawn = Buffer.create 16 in
        List.iter (encode_prefix withdrawn) u.withdrawn;
        B.u16 body (Buffer.length withdrawn);
        Buffer.add_buffer body withdrawn;
        let attrs = Buffer.create 32 in
        Option.iter (encode_attrs attrs) u.attrs;
        B.u16 body (Buffer.length attrs);
        Buffer.add_buffer body attrs;
        List.iter (encode_prefix body) u.nlri;
        t_update
    | Keepalive -> t_keepalive
    | Notification { code; subcode } ->
        B.u8 body code;
        B.u8 body subcode;
        t_notification
  in
  let total = header_len + Buffer.length body in
  let out = Buffer.create total in
  for _ = 1 to 16 do
    Buffer.add_char out marker_byte
  done;
  B.u16 out total;
  B.u8 out type_code;
  Buffer.add_buffer out body;
  Buffer.to_bytes out

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type cursor = { buf : bytes; mutable pos : int; limit : int }

let need c n = if c.pos + n > c.limit then bad "truncated at offset %d" c.pos

let u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let hi = u8 c in
  (hi lsl 8) lor u8 c

let u32 c =
  let hi = u16 c in
  (hi lsl 16) lor u16 c

let decode_prefix c =
  let len = u8 c in
  if len > 32 then bad "prefix length %d" len;
  let bytes_needed = (len + 7) / 8 in
  let network = ref 0 in
  for i = 0 to bytes_needed - 1 do
    network := !network lor (u8 c lsl (8 * (3 - i)))
  done;
  Prefix.make (Ipv4.of_int !network) len

let decode_prefixes c until =
  let acc = ref [] in
  while c.pos < until do
    acc := decode_prefix c :: !acc
  done;
  List.rev !acc

let decode_attrs c until =
  let origin = ref Route.Igp in
  let as_path = ref [] in
  let next_hop = ref None in
  let med = ref None in
  let local_pref = ref None in
  let communities = ref [] in
  while c.pos < until do
    let flags = u8 c in
    let type_code = u8 c in
    let len = if flags land 0x10 <> 0 then u16 c else u8 c in
    let value_end = c.pos + len in
    if value_end > until then bad "attribute overruns message";
    (if type_code = a_origin then
       origin :=
         match u8 c with
         | 0 -> Route.Igp
         | 1 -> Route.Egp
         | 2 -> Route.Incomplete
         | v -> bad "origin %d" v
     else if type_code = a_as_path then begin
       if len > 0 then begin
         let seg_type = u8 c in
         if seg_type <> 2 then bad "AS_PATH segment type %d" seg_type;
         let count = u8 c in
         (* Read sequentially: the wire order is the path order. *)
         let rec read k acc =
           if k = 0 then List.rev acc
           else read (k - 1) (Asn.of_int (u16 c) :: acc)
         in
         as_path := read count []
       end
     end
     else if type_code = a_next_hop then next_hop := Some (Ipv4.of_int (u32 c))
     else if type_code = a_med then med := Some (u32 c)
     else if type_code = a_local_pref then local_pref := Some (u32 c)
     else if type_code = a_communities then begin
       let n = len / 4 in
       let rec read k acc =
         if k = 0 then List.rev acc
         else begin
           let hi = u16 c in
           let lo = u16 c in
           read (k - 1) ((hi, lo) :: acc)
         end
       in
       communities := read n []
     end
     else c.pos <- value_end (* skip unknown attributes *));
    if c.pos <> value_end then bad "attribute %d length mismatch" type_code
  done;
  match !next_hop with
  | None -> None
  | Some next_hop ->
      Some
        {
          origin = !origin;
          as_path = !as_path;
          next_hop;
          med = !med;
          local_pref = !local_pref;
          communities = !communities;
        }

let decode buf =
  match
    let len = Bytes.length buf in
    if len < header_len then bad "shorter than a BGP header";
    for i = 0 to 15 do
      if Bytes.get buf i <> marker_byte then bad "bad marker"
    done;
    let declared = (Bytes.get_uint8 buf 16 lsl 8) lor Bytes.get_uint8 buf 17 in
    if declared <> len then bad "declared length %d, got %d" declared len;
    let type_code = Bytes.get_uint8 buf 18 in
    let c = { buf; pos = header_len; limit = len } in
    if type_code = t_open then begin
      let version = u8 c in
      if version <> 4 then bad "BGP version %d" version;
      let asn = Asn.of_int (u16 c) in
      let hold_time = u16 c in
      let bgp_id = Ipv4.of_int (u32 c) in
      let opt_len = u8 c in
      c.pos <- c.pos + opt_len;
      Open { asn; hold_time; bgp_id }
    end
    else if type_code = t_update then begin
      let withdrawn_len = u16 c in
      let withdrawn = decode_prefixes c (c.pos + withdrawn_len) in
      let attrs_len = u16 c in
      let attrs = decode_attrs c (c.pos + attrs_len) in
      let nlri = decode_prefixes c c.limit in
      if nlri <> [] && attrs = None then bad "NLRI without a NEXT_HOP";
      Update { withdrawn; attrs; nlri }
    end
    else if type_code = t_keepalive then Keepalive
    else if type_code = t_notification then begin
      let code = u8 c in
      let subcode = u8 c in
      Notification { code; subcode }
    end
    else bad "message type %d" type_code
  with
  | msg -> Ok msg
  | exception Bad e -> Error e

(* ------------------------------------------------------------------ *)

let of_update = function
  | Update.Announce (r : Route.t) ->
      Update
        {
          withdrawn = [];
          attrs =
            Some
              {
                origin = r.origin;
                as_path = r.as_path;
                next_hop = r.next_hop;
                med = Some r.med;
                local_pref = Some r.local_pref;
                communities = r.communities;
              };
          nlri = [ r.prefix ];
        }
  | Update.Withdraw { prefix; _ } ->
      Update { withdrawn = [ prefix ]; attrs = None; nlri = [] }

let to_updates ~peer = function
  | Update u ->
      let withdrawals =
        List.map (fun prefix -> Update.withdraw ~peer prefix) u.withdrawn
      in
      let announcements =
        match u.attrs with
        | None -> []
        | Some a ->
            List.map
              (fun prefix ->
                Update.announce
                  (Route.make ~prefix ~next_hop:a.next_hop ~as_path:a.as_path
                     ?local_pref:a.local_pref ?med:a.med ~origin:a.origin
                     ~communities:a.communities ~learned_from:peer ()))
              u.nlri
      in
      withdrawals @ announcements
  | Open _ | Keepalive | Notification _ -> []

let pp fmt = function
  | Open o ->
      Format.fprintf fmt "OPEN %a hold=%d id=%a" Asn.pp o.asn o.hold_time
        Ipv4.pp o.bgp_id
  | Update u ->
      Format.fprintf fmt "UPDATE withdrawn=[%s] nlri=[%s]"
        (String.concat ", " (List.map Prefix.to_string u.withdrawn))
        (String.concat ", " (List.map Prefix.to_string u.nlri))
  | Keepalive -> Format.pp_print_string fmt "KEEPALIVE"
  | Notification { code; subcode } ->
      Format.fprintf fmt "NOTIFICATION %d/%d" code subcode
