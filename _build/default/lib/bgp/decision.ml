open Sdx_net

let origin_rank = function
  | Route.Igp -> 0
  | Route.Egp -> 1
  | Route.Incomplete -> 2

(* Returns > 0 when [a] is preferred over [b]. *)
let prefer (a : Route.t) (b : Route.t) =
  let steps =
    [
      (fun () -> Int.compare a.local_pref b.local_pref);
      (fun () -> Int.compare (List.length b.as_path) (List.length a.as_path));
      (fun () -> Int.compare (origin_rank b.origin) (origin_rank a.origin));
      (fun () -> Int.compare b.med a.med);
      (fun () ->
        Int.compare
          (Asn.to_int b.learned_from)
          (Asn.to_int a.learned_from));
      (fun () ->
        Int.compare (Ipv4.to_int b.next_hop) (Ipv4.to_int a.next_hop));
    ]
  in
  let rec go = function
    | [] -> 0
    | step :: rest ->
        let c = step () in
        if c <> 0 then c else go rest
  in
  go steps

let best = function
  | [] -> None
  | r :: rest ->
      Some (List.fold_left (fun acc r -> if prefer r acc > 0 then r else acc) r rest)

let sort routes = List.sort (fun a b -> prefer b a) routes
