lib/bgp/peering.mli: Asn Route
