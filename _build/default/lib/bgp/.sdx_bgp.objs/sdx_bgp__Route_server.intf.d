lib/bgp/route_server.mli: As_path_regex Asn Ipv4 Prefix Route Sdx_net Update
