lib/bgp/update.ml: Asn Format Prefix Route Sdx_net
