lib/bgp/update.mli: Asn Format Prefix Route Sdx_net
