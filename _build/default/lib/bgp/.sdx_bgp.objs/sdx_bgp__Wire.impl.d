lib/bgp/wire.ml: Asn Buffer Bytes Format Ipv4 List Option Prefix Printf Route Sdx_net String Update
