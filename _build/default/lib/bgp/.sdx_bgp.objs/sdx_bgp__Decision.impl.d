lib/bgp/decision.ml: Asn Int Ipv4 List Route Sdx_net
