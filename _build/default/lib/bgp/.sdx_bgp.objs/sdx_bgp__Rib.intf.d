lib/bgp/rib.mli: Ipv4 Prefix Route Sdx_net
