lib/bgp/session.ml: Asn List Prefix Route Sdx_net Update
