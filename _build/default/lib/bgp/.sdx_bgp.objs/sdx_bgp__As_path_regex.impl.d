lib/bgp/as_path_regex.ml: List Printf Re Route
