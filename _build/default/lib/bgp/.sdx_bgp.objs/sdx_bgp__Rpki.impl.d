lib/bgp/rpki.ml: Asn Format List Option Prefix Prefix_trie Printf Route Sdx_net
