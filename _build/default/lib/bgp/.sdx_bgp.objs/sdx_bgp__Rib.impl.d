lib/bgp/rib.ml: List Prefix_trie Route Sdx_net
