lib/bgp/route_server.ml: As_path_regex Asn Decision Hashtbl List Option Prefix Prefix_trie Printf Rib Route Sdx_net Update
