lib/bgp/as_path_regex.mli: Route
