lib/bgp/route.mli: Asn Format Ipv4 Prefix Sdx_net
