lib/bgp/peer.mli: Asn Fsm Update Wire
