lib/bgp/session.mli: Asn Prefix Route Sdx_net Update
