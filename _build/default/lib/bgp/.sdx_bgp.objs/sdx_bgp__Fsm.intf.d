lib/bgp/fsm.mli: Format Wire
