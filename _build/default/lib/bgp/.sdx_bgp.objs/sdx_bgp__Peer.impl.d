lib/bgp/peer.ml: Asn Buffer Bytes Char Fsm List String Wire
