lib/bgp/fsm.ml: Format Wire
