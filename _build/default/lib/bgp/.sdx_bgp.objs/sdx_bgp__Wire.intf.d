lib/bgp/wire.mli: Asn Format Ipv4 Prefix Route Sdx_net Update
