lib/bgp/peering.ml: Asn List Route
