lib/bgp/rpki.mli: Asn Format Prefix Route Sdx_net
