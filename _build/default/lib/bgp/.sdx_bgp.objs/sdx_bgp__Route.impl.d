lib/bgp/route.ml: Asn Format Ipv4 List Prefix Sdx_net Stdlib String
