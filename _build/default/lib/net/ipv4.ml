type t = int

let max_addr = 0xFFFF_FFFF
let zero = 0
let broadcast = max_addr

let of_int n =
  if n < 0 || n > max_addr then
    invalid_arg (Printf.sprintf "Ipv4.of_int: %d out of range" n)
  else n

let to_int t = t

let of_octets a b c d =
  let check o =
    if o < 0 || o > 255 then
      invalid_arg (Printf.sprintf "Ipv4.of_octets: octet %d out of range" o)
  in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> Some v
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d"
    ((t lsr 24) land 0xFF)
    ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF)
    (t land 0xFF)

let compare = Int.compare
let equal = Int.equal
let hash t = Hashtbl.hash t
let succ t = (t + 1) land max_addr
let logand a b = a land b
let logor a b = a lor b
let pp fmt t = Format.pp_print_string fmt (to_string t)
