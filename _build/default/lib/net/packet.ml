type t = {
  port : int;
  src_mac : Mac.t;
  dst_mac : Mac.t;
  eth_type : int;
  src_ip : Ipv4.t;
  dst_ip : Ipv4.t;
  proto : int;
  src_port : int;
  dst_port : int;
}

let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806
let proto_tcp = 6
let proto_udp = 17

let make ?(port = 0) ?(src_mac = Mac.zero) ?(dst_mac = Mac.zero)
    ?(eth_type = ethertype_ipv4) ?(src_ip = Ipv4.zero) ?(dst_ip = Ipv4.zero)
    ?(proto = proto_tcp) ?(src_port = 0) ?(dst_port = 0) () =
  { port; src_mac; dst_mac; eth_type; src_ip; dst_ip; proto; src_port; dst_port }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp fmt t =
  Format.fprintf fmt
    "@[<h>{port=%d; %a->%a; eth=0x%04x; %a:%d -> %a:%d; proto=%d}@]" t.port
    Mac.pp t.src_mac Mac.pp t.dst_mac t.eth_type Ipv4.pp t.src_ip t.src_port
    Ipv4.pp t.dst_ip t.dst_port t.proto

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
