(** Conventional IP prefix aggregation: the smallest prefix set covering
    exactly the same addresses.

    §4.2 dismisses this as a substitute for forwarding equivalence
    classes — "conventional IP prefix aggregation does not work because
    prefixes p1 and p2 might not be contiguous IP address blocks" — and
    the [vmac] benchmark quantifies it: aggregating each prefix group
    barely shrinks it, while the VMAC tag always costs exactly one
    rule. *)

val minimize : Prefix.t list -> Prefix.t list
(** The canonical minimal cover: duplicates and contained prefixes are
    dropped, and sibling pairs are merged into their parent, to a fixed
    point.  The result covers exactly the same addresses, sorted. *)

val covers_same : Prefix.t list -> Prefix.t list -> bool
(** Whether two prefix lists cover the same address set (by comparing
    canonical forms). *)
