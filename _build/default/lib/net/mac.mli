(** 48-bit Ethernet MAC addresses, stored as unboxed [int]. *)

type t = private int

val zero : t
val broadcast : t

val of_int : int -> t
(** @raise Invalid_argument if outside [0, 2^48). *)

val to_int : t -> int

val of_string : string -> t
(** Parses colon-separated hex, e.g. ["0a:1b:2c:3d:4e:5f"].
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
