(* Drop prefixes contained in another member of the set. *)
let prune_contained set =
  Prefix.Set.filter
    (fun p ->
      not
        (Prefix.Set.exists
           (fun q -> (not (Prefix.equal p q)) && Prefix.subset p q)
           set))
    set

let sibling p =
  let len = Prefix.length p in
  if len = 0 then None
  else
    let bit = 1 lsl (32 - len) in
    Some (Prefix.make (Ipv4.of_int (Ipv4.to_int (Prefix.network p) lxor bit)) len)

let parent p = Prefix.make (Prefix.network p) (Prefix.length p - 1)

(* Merge sibling pairs bottom-up until nothing merges.  Each round also
   re-prunes, since a new parent can swallow other members. *)
let rec merge_fixpoint set =
  let merged = ref false in
  let set' =
    Prefix.Set.fold
      (fun p acc ->
        if not (Prefix.Set.mem p acc) then acc (* already consumed *)
        else
          match sibling p with
          | Some s when Prefix.Set.mem s acc ->
              merged := true;
              Prefix.Set.add (parent p) (Prefix.Set.remove s (Prefix.Set.remove p acc))
          | _ -> acc)
      set set
  in
  if !merged then merge_fixpoint (prune_contained set') else set'

let minimize prefixes =
  Prefix.Set.elements
    (merge_fixpoint (prune_contained (Prefix.Set.of_list prefixes)))

let covers_same a b =
  let ca = minimize a and cb = minimize b in
  List.length ca = List.length cb && List.for_all2 Prefix.equal ca cb
