lib/net/aggregate.mli: Prefix
