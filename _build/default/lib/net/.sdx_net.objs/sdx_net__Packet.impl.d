lib/net/packet.ml: Format Ipv4 Mac Set Stdlib
