lib/net/ipv4.ml: Format Hashtbl Int Printf String
