lib/net/aggregate.ml: Ipv4 List Prefix
