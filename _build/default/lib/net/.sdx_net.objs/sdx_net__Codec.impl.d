lib/net/codec.ml: Bytes Ipv4 Mac Packet
