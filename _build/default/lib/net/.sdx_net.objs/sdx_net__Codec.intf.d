lib/net/codec.mli: Packet
