lib/net/packet.mli: Format Ipv4 Mac Set
