(** Wire serialization for packets: Ethernet II framing with an IPv4
    header and a TCP or UDP transport header, checksums included — the
    bytes a real SDX fabric port would carry.

    {!Packet.t} models exactly the header fields the fabric matches on,
    so encoding is lossless except for the packet's location (the switch
    port), which travels out of band. *)


val to_bytes : Packet.t -> bytes
(** Frame the packet: Ethernet header, IPv4 header (with header
    checksum), and a TCP or UDP header according to [proto] (with a
    correct transport checksum over the pseudo-header).  Unknown IP
    protocols get an empty payload after the IPv4 header; non-IPv4
    ethertypes carry no L3 payload. *)

val of_bytes : ?port:int -> bytes -> (Packet.t, string) result
(** Parse a frame produced by {!to_bytes} (or compatible).  Validates
    lengths and the IPv4 header checksum; [port] sets the resulting
    packet's location (default 0). *)

val frame_length : Packet.t -> int
(** Length in bytes of the frame {!to_bytes} would produce. *)

val ipv4_header_checksum : bytes -> off:int -> int
(** The Internet checksum of the 20-byte IPv4 header at [off], computed
    with its checksum field zeroed — exposed for tests and tooling. *)
