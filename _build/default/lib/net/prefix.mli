(** IPv4 CIDR prefixes.

    A prefix is a network address plus a mask length.  Values are
    normalized on construction: host bits below the mask are cleared, so
    structural equality coincides with semantic equality. *)

type t = private { network : Ipv4.t; len : int }

val make : Ipv4.t -> int -> t
(** [make addr len] is the prefix [addr/len], with host bits cleared.
    @raise Invalid_argument if [len] is outside [0, 32]. *)

val of_string : string -> t
(** Parses ["a.b.c.d/len"]; a bare address parses as a /32.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val network : t -> Ipv4.t
val length : t -> int

val default : t
(** [0.0.0.0/0], matching every address. *)

val mem : Ipv4.t -> t -> bool
(** [mem addr p] is [true] iff [addr] lies inside [p]. *)

val subset : t -> t -> bool
(** [subset p q] is [true] iff every address in [p] is also in [q]. *)

val overlaps : t -> t -> bool
(** [overlaps p q] is [true] iff [p] and [q] share at least one address.
    For prefixes this happens exactly when one contains the other. *)

val inter : t -> t -> t option
(** Intersection of two prefixes: the more specific one if they overlap. *)

val split : t -> t * t
(** [split p] halves [p] into its two child prefixes.
    @raise Invalid_argument on a /32. *)

val first : t -> Ipv4.t
val last : t -> Ipv4.t

val host : t -> int -> Ipv4.t
(** [host p i] is the [i]-th address inside [p].
    @raise Invalid_argument if [i] is out of range. *)

val compare : t -> t -> int
(** Total order: by network address, then by mask length (shorter first). *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
