let ethernet_header_len = 14
let ipv4_header_len = 20
let tcp_header_len = 20
let udp_header_len = 8

let set_u16 buf off v =
  Bytes.set_uint8 buf off ((v lsr 8) land 0xFF);
  Bytes.set_uint8 buf (off + 1) (v land 0xFF)

let get_u16 buf off = (Bytes.get_uint8 buf off lsl 8) lor Bytes.get_uint8 buf (off + 1)

let set_u32 buf off v =
  set_u16 buf off ((v lsr 16) land 0xFFFF);
  set_u16 buf (off + 2) (v land 0xFFFF)

let get_u32 buf off = (get_u16 buf off lsl 16) lor get_u16 buf (off + 2)

let set_mac buf off mac =
  let v = Mac.to_int mac in
  for i = 0 to 5 do
    Bytes.set_uint8 buf (off + i) ((v lsr (8 * (5 - i))) land 0xFF)
  done

let get_mac buf off =
  let v = ref 0 in
  for i = 0 to 5 do
    v := (!v lsl 8) lor Bytes.get_uint8 buf (off + i)
  done;
  Mac.of_int !v

(* RFC 1071 Internet checksum over [len] bytes at [off]. *)
let internet_checksum buf ~off ~len =
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + get_u16 buf (off + !i);
    i := !i + 2
  done;
  if !i < len then sum := !sum + (Bytes.get_uint8 buf (off + !i) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let ipv4_header_checksum buf ~off =
  (* Compute with the checksum field (bytes 10-11) zeroed. *)
  let copy = Bytes.sub buf off ipv4_header_len in
  set_u16 copy 10 0;
  internet_checksum copy ~off:0 ~len:ipv4_header_len

let transport_len (p : Packet.t) =
  if p.proto = Packet.proto_tcp then tcp_header_len
  else if p.proto = Packet.proto_udp then udp_header_len
  else 0

let frame_length (p : Packet.t) =
  if p.eth_type = Packet.ethertype_ipv4 then
    ethernet_header_len + ipv4_header_len + transport_len p
  else ethernet_header_len

(* Checksum of the transport header plus the IPv4 pseudo-header. *)
let transport_checksum (p : Packet.t) transport =
  let tlen = Bytes.length transport in
  let pseudo = Bytes.create (12 + tlen) in
  set_u32 pseudo 0 (Ipv4.to_int p.src_ip);
  set_u32 pseudo 4 (Ipv4.to_int p.dst_ip);
  Bytes.set_uint8 pseudo 8 0;
  Bytes.set_uint8 pseudo 9 p.proto;
  set_u16 pseudo 10 tlen;
  Bytes.blit transport 0 pseudo 12 tlen;
  internet_checksum pseudo ~off:0 ~len:(12 + tlen)

let to_bytes (p : Packet.t) =
  let buf = Bytes.make (frame_length p) '\000' in
  set_mac buf 0 p.dst_mac;
  set_mac buf 6 p.src_mac;
  set_u16 buf 12 p.eth_type;
  if p.eth_type = Packet.ethertype_ipv4 then begin
    let ip_off = ethernet_header_len in
    let total_len = ipv4_header_len + transport_len p in
    Bytes.set_uint8 buf ip_off 0x45 (* version 4, IHL 5 *);
    Bytes.set_uint8 buf (ip_off + 1) 0 (* DSCP/ECN *);
    set_u16 buf (ip_off + 2) total_len;
    set_u16 buf (ip_off + 4) 0 (* identification *);
    set_u16 buf (ip_off + 6) 0x4000 (* don't fragment *);
    Bytes.set_uint8 buf (ip_off + 8) 64 (* TTL *);
    Bytes.set_uint8 buf (ip_off + 9) p.proto;
    set_u32 buf (ip_off + 12) (Ipv4.to_int p.src_ip);
    set_u32 buf (ip_off + 16) (Ipv4.to_int p.dst_ip);
    set_u16 buf (ip_off + 10) (ipv4_header_checksum buf ~off:ip_off);
    let t_off = ip_off + ipv4_header_len in
    if p.proto = Packet.proto_tcp then begin
      let tcp = Bytes.make tcp_header_len '\000' in
      set_u16 tcp 0 p.src_port;
      set_u16 tcp 2 p.dst_port;
      Bytes.set_uint8 tcp 12 (5 lsl 4) (* data offset 5 words *);
      Bytes.set_uint8 tcp 13 0x02 (* SYN, a plausible default *);
      set_u16 tcp 14 0xFFFF (* window *);
      set_u16 tcp 16 (transport_checksum p tcp);
      Bytes.blit tcp 0 buf t_off tcp_header_len
    end
    else if p.proto = Packet.proto_udp then begin
      let udp = Bytes.make udp_header_len '\000' in
      set_u16 udp 0 p.src_port;
      set_u16 udp 2 p.dst_port;
      set_u16 udp 4 udp_header_len;
      set_u16 udp 6 (transport_checksum p udp);
      Bytes.blit udp 0 buf t_off udp_header_len
    end
  end;
  buf

let of_bytes ?(port = 0) buf =
  let len = Bytes.length buf in
  if len < ethernet_header_len then Error "frame shorter than an Ethernet header"
  else begin
    let dst_mac = get_mac buf 0 in
    let src_mac = get_mac buf 6 in
    let eth_type = get_u16 buf 12 in
    if eth_type <> Packet.ethertype_ipv4 then
      Ok (Packet.make ~port ~src_mac ~dst_mac ~eth_type ~proto:0 ())
    else if len < ethernet_header_len + ipv4_header_len then
      Error "truncated IPv4 header"
    else begin
      let ip_off = ethernet_header_len in
      let version_ihl = Bytes.get_uint8 buf ip_off in
      if version_ihl lsr 4 <> 4 then Error "not an IPv4 packet"
      else if version_ihl land 0xF <> 5 then Error "IPv4 options unsupported"
      else if get_u16 buf (ip_off + 10) <> ipv4_header_checksum buf ~off:ip_off
      then Error "bad IPv4 header checksum"
      else begin
        let proto = Bytes.get_uint8 buf (ip_off + 9) in
        let src_ip = Ipv4.of_int (get_u32 buf (ip_off + 12)) in
        let dst_ip = Ipv4.of_int (get_u32 buf (ip_off + 16)) in
        let t_off = ip_off + ipv4_header_len in
        let need =
          if proto = Packet.proto_tcp then tcp_header_len
          else if proto = Packet.proto_udp then udp_header_len
          else 0
        in
        if len < t_off + need then Error "truncated transport header"
        else begin
          let src_port, dst_port =
            if need > 0 then (get_u16 buf t_off, get_u16 buf (t_off + 2))
            else (0, 0)
          in
          Ok
            (Packet.make ~port ~src_mac ~dst_mac ~eth_type ~src_ip ~dst_ip
               ~proto ~src_port ~dst_port ())
        end
      end
    end
  end
