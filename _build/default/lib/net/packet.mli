(** Located packets: the header fields an OpenFlow 1.0-style fabric can
    match on, plus the packet's current location (a switch port).

    The SDX data plane never inspects payloads, so a packet is just its
    header tuple.  [port] is the location in the sense of Pyretic's
    located packets: ingress port on arrival, output port after a
    forwarding action. *)

type t = {
  port : int;  (** current location: switch port number *)
  src_mac : Mac.t;
  dst_mac : Mac.t;
  eth_type : int;  (** EtherType, e.g. 0x0800 for IPv4 *)
  src_ip : Ipv4.t;
  dst_ip : Ipv4.t;
  proto : int;  (** IP protocol, e.g. 6 = TCP, 17 = UDP *)
  src_port : int;  (** transport source port *)
  dst_port : int;  (** transport destination port *)
}

val ethertype_ipv4 : int
val ethertype_arp : int
val proto_tcp : int
val proto_udp : int

val make :
  ?port:int ->
  ?src_mac:Mac.t ->
  ?dst_mac:Mac.t ->
  ?eth_type:int ->
  ?src_ip:Ipv4.t ->
  ?dst_ip:Ipv4.t ->
  ?proto:int ->
  ?src_port:int ->
  ?dst_port:int ->
  unit ->
  t
(** A packet with all unspecified fields zeroed and [eth_type] defaulting
    to IPv4, [proto] to TCP. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
