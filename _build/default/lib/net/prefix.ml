type t = { network : Ipv4.t; len : int }

let mask_of_len len = if len = 0 then 0 else 0xFFFF_FFFF lsl (32 - len) land 0xFFFF_FFFF

let make addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.make: length %d out of range" len)
  else
    { network = Ipv4.of_int (Ipv4.to_int addr land mask_of_len len); len }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map (fun a -> make a 32) (Ipv4.of_string_opt s)
  | Some i -> (
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string_opt addr, int_of_string_opt len) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
      | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string t = Printf.sprintf "%s/%d" (Ipv4.to_string t.network) t.len
let network t = t.network
let length t = t.len
let default = { network = Ipv4.zero; len = 0 }

let mem addr t =
  Ipv4.to_int addr land mask_of_len t.len = Ipv4.to_int t.network

let subset p q = p.len >= q.len && mem p.network q
let overlaps p q = subset p q || subset q p
let inter p q = if subset p q then Some p else if subset q p then Some q else None

let split t =
  if t.len >= 32 then invalid_arg "Prefix.split: cannot split a /32"
  else
    let len = t.len + 1 in
    let lo = { network = t.network; len } in
    let hi_addr = Ipv4.to_int t.network lor (1 lsl (32 - len)) in
    (lo, { network = Ipv4.of_int hi_addr; len })

let first t = t.network
let last t = Ipv4.of_int (Ipv4.to_int t.network lor (lnot (mask_of_len t.len) land 0xFFFF_FFFF))

let host t i =
  let size = if t.len = 0 then 1 lsl 32 else 1 lsl (32 - t.len) in
  if i < 0 || i >= size then
    invalid_arg (Printf.sprintf "Prefix.host: index %d out of range for %s" i (to_string t))
  else Ipv4.of_int (Ipv4.to_int t.network + i)

let compare p q =
  match Ipv4.compare p.network q.network with
  | 0 -> Int.compare p.len q.len
  | c -> c

let equal p q = compare p q = 0
let hash t = Hashtbl.hash (Ipv4.to_int t.network, t.len)
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
