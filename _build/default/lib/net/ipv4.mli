(** IPv4 addresses.

    Addresses are stored as unboxed native [int] values in the range
    [0, 2^32), which keeps comparisons and hashing allocation-free on
    64-bit platforms. *)

type t = private int

val zero : t
val broadcast : t

val of_int : int -> t
(** [of_int n] interprets the low 32 bits of [n] as an address.
    @raise Invalid_argument if [n] is negative or exceeds 32 bits. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d].
    @raise Invalid_argument if any octet is outside [0, 255]. *)

val of_string : string -> t
(** Parses dotted-quad notation, e.g. ["192.0.2.1"].
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val succ : t -> t
(** Next address, wrapping at the top of the space. *)

val logand : t -> t -> t
val logor : t -> t -> t

val pp : Format.formatter -> t -> unit
