type t = int

let max_mac = 0xFFFF_FFFF_FFFF
let zero = 0
let broadcast = max_mac

let of_int n =
  if n < 0 || n > max_mac then
    invalid_arg (Printf.sprintf "Mac.of_int: %d out of range" n)
  else n

let to_int t = t

let of_string_opt s =
  match String.split_on_char ':' s with
  | [ _; _; _; _; _; _ ] as parts ->
      let byte x =
        if String.length x = 2 then int_of_string_opt ("0x" ^ x) else None
      in
      List.fold_left
        (fun acc p ->
          match (acc, byte p) with
          | Some acc, Some b -> Some ((acc lsl 8) lor b)
          | _ -> None)
        (Some 0) parts
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Mac.of_string: %S" s)

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((t lsr 40) land 0xFF)
    ((t lsr 32) land 0xFF)
    ((t lsr 24) land 0xFF)
    ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF)
    (t land 0xFF)

let compare = Int.compare
let equal = Int.equal
let hash t = Hashtbl.hash t
let pp fmt t = Format.pp_print_string fmt (to_string t)
