(** Replay a BGP update trace through a live SDX runtime — the
    end-to-end version of the §4.3.2 evaluation: every burst takes the
    fast path (fresh VNH, delta rules stacked at higher priority), and
    the background re-optimization runs whenever the trace goes quiet,
    exactly the two-stage strategy the paper describes ("BGP bursts are
    separated by large periods with no changes, enabling quick,
    suboptimal reactions followed by background re-optimization"). *)


type result = {
  bursts : int;
  updates : int;
  best_changed : int;  (** updates that actually moved a best route *)
  reoptimizations : int;  (** background-stage runs triggered by quiet gaps *)
  peak_extra_rules : int;  (** worst fast-path rule overhead seen *)
  final_rules : int;
  mean_update_ms : float;
  p99_update_ms : float;
  max_update_ms : float;
}

val run :
  ?quiet_gap_s:float ->
  Sdx_core.Runtime.t ->
  Trace.t ->
  result
(** Processes the trace in burst order.  A gap of at least [quiet_gap_s]
    simulated seconds (default 60, the paper's median burst
    inter-arrival) between bursts triggers the background
    re-optimization. *)

val trace_for_workload :
  Rng.t -> Workload.t -> profile:Trace.profile -> duration_s:float -> Trace.t
(** A trace targeting an existing workload: updates come from the
    workload's own participants (with winning local preferences, so
    best paths actually move) and touch its announced prefixes. *)

val pp_result : Format.formatter -> result -> unit
