(** IXP participant populations with the skew observed at large European
    exchanges (§6.1): roughly 1% of ASes announce more than half of all
    prefixes while the bottom 90% together announce under a few percent. *)

open Sdx_bgp

type kind = Eyeball | Transit | Content

type spec = {
  asn : Asn.t;
  kind : kind;
  prefix_count : int;  (** prefixes this participant announces *)
  port_count : int;  (** 1, or 2 for the multi-port fraction *)
}

val generate :
  Rng.t ->
  participants:int ->
  prefixes:int ->
  ?multi_port_fraction:float ->
  ?zipf_alpha:float ->
  unit ->
  spec list
(** Produces [participants] specs whose prefix counts follow a Zipf
    distribution with exponent [zipf_alpha] (default 1.8, which yields
    the paper's concentration) summing to [prefixes]; kinds are assigned
    cyclically with a 40/20/40 eyeball/transit/content mix; a
    [multi_port_fraction] (default 0.1) of participants get two ports.
    Specs are ordered by descending prefix count. *)

val top_share : spec list -> fraction:float -> float
(** Share of all prefixes announced by the top [fraction] of
    participants — used to validate the skew. *)

val bottom_share : spec list -> fraction:float -> float

val by_kind : spec list -> kind -> spec list
(** Specs of one kind, preserving the descending-prefix-count order. *)
