lib/ixp/population.ml: Array Asn Float Int List Rng Sdx_bgp
