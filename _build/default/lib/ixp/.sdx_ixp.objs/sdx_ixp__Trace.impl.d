lib/ixp/trace.ml: Array Asn Float Format Fun Ipv4 List Option Prefix Prefixes Printf Rng Route Sdx_bgp Sdx_net String Update
