lib/ixp/workload.mli: Asn Ipv4 Population Prefix Rng Sdx_bgp Sdx_core Sdx_net Update
