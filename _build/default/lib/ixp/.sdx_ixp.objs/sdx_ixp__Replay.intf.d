lib/ixp/replay.mli: Format Rng Sdx_core Trace Workload
