lib/ixp/trace.mli: Asn Format Rng Sdx_bgp Sdx_net Update
