lib/ixp/workload.ml: Array Asn Config Float Fun Hashtbl Ipv4 List Mac Packet Participant Population Ppolicy Pred Prefix Prefixes Rng Route Runtime Sdx_bgp Sdx_core Sdx_net Sdx_policy Update
