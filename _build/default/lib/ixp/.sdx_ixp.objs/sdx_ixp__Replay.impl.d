lib/ixp/replay.ml: Array Float Format List Population Sdx_core Trace Workload
