lib/ixp/rng.mli:
