lib/ixp/rng.ml: Array List Random
