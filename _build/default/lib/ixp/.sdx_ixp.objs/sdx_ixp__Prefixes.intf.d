lib/ixp/prefixes.mli: Ipv4 Prefix Sdx_net
