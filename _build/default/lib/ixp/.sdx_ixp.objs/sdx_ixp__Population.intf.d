lib/ixp/population.mli: Asn Rng Sdx_bgp
