lib/ixp/prefixes.ml: Ipv4 List Prefix Printf Sdx_net
