(** Seeded pseudo-random source for workload generation.  Every
    experiment takes an explicit seed so runs are reproducible. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t n] is uniform in [0, n). *)

val float : t -> float -> float
val bool : t -> p:float -> bool
(** Bernoulli with success probability [p]. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val sample : t -> 'a list -> int -> 'a list
(** [sample t l k] draws up to [k] distinct elements (fewer when [l] is
    shorter than [k]), preserving no particular order. *)

val shuffle : t -> 'a list -> 'a list

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float. *)

val pareto : t -> xmin:float -> alpha:float -> float
(** Pareto-distributed float, at least [xmin] — the heavy tail used for
    burst sizes. *)
