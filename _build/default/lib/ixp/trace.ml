open Sdx_net
open Sdx_bgp

type burst = { at_s : float; updates : Update.t list }
type t = burst list

type profile = {
  name : string;
  collector_peers : int;
  total_peers : int;
  prefixes : int;
  updates : int;
  updated_prefix_fraction : float;
}

let ams_ix =
  {
    name = "AMS-IX";
    collector_peers = 116;
    total_peers = 639;
    prefixes = 518_082;
    updates = 11_161_624;
    updated_prefix_fraction = 0.0988;
  }

let de_cix =
  {
    name = "DE-CIX";
    collector_peers = 92;
    total_peers = 580;
    prefixes = 518_391;
    updates = 30_934_525;
    updated_prefix_fraction = 0.1364;
  }

let linx =
  {
    name = "LINX";
    collector_peers = 71;
    total_peers = 496;
    prefixes = 503_392;
    updates = 16_658_819;
    updated_prefix_fraction = 0.1267;
  }

let scale p f =
  {
    p with
    prefixes = max 1 (int_of_float (float_of_int p.prefixes *. f));
    updates = max 1 (int_of_float (float_of_int p.updates *. f));
  }

(* Burst sizes in prefixes: 75% uniform in 1..3, the rest Pareto-tailed
   ([xmin] tuned per profile) so that thousand-prefix bursts occur but
   are rare (the paper saw one in a week). *)
let burst_size rng ~xmin ~cap =
  if Rng.bool rng ~p:0.75 then 1 + Rng.int rng 3
  else min cap (int_of_float (Rng.pareto rng ~xmin ~alpha:1.3))

(* Inter-arrival times: 25% under 10 s, 25% between 10 s and 60 s, the
   rest exponential above a minute — matching "at least 10 s 75% of the
   time; more than one minute half of the time".  Mean about 58 s. *)
let interarrival rng =
  let u = Rng.float rng 1.0 in
  if u < 0.25 then 1.0 +. Rng.float rng 9.0
  else if u < 0.5 then 10.0 +. Rng.float rng 50.0
  else 60.0 +. Rng.exponential rng ~mean:35.0

let mean_interarrival = 0.25 *. 5.5 +. 0.25 *. 35.0 +. 0.5 *. 95.0

let generate rng profile ~duration_s ?peer_of ?prefix_of ?next_hop_of () =
  let unstable_count =
    max 1
      (int_of_float
         (profile.updated_prefix_fraction *. float_of_int profile.prefixes))
  in
  (* The unstable prefixes are a fixed subset: stability is a property of
     the prefix (§4.3.2), not of the moment. *)
  let prefix_of = Option.value prefix_of ~default:Prefixes.nth in
  let unstable = Array.init unstable_count prefix_of in
  let peer =
    match peer_of with
    | Some f -> f
    | None -> fun i -> Asn.of_int (20_000 + (i mod profile.collector_peers))
  in
  let next_hop =
    match next_hop_of with
    | Some f -> f
    | None -> fun i -> Ipv4.of_int (0x0B000000 + (i mod profile.collector_peers))
  in
  let make_update i prefix =
    if Rng.bool rng ~p:0.85 then
      Update.announce
        (Route.make ~prefix ~next_hop:(next_hop i)
           ~as_path:[ peer i; Asn.of_int (65_000 + Rng.int rng 500) ]
           ~med:(Rng.int rng 100) ~learned_from:(peer i) ())
    else Update.withdraw ~peer:(peer i) prefix
  in
  (* One routing event produces a burst of BGP path exploration: a few
     affected prefixes, each flapping through several transient paths.
     This is how millions of updates fit a week whose bursts are >=10s
     apart and mostly touch at most three prefixes (Table 1 + §4.3.2):
     the flap multiplicity absorbs the update volume.  The burst-size
     tail is tuned so the expected prefix draws cover the unstable set,
     and [mean_flaps] so the expected total meets the update count. *)
  let expected_bursts = Float.max 1.0 (duration_s /. mean_interarrival) in
  let mean_burst_prefixes =
    Float.max 2.0 (float_of_int unstable_count /. expected_bursts)
  in
  let tail_mean = Float.max 4.0 ((mean_burst_prefixes -. 1.5) /. 0.25) in
  (* xmin >= 4 keeps every tail burst above three prefixes, preserving
     the 75% small-burst share. *)
  let xmin = Float.max 4.0 (tail_mean *. 0.3 /. 1.3) in
  let cap = min 2_000 unstable_count in
  let mean_flaps =
    Float.max 1.0
      (float_of_int profile.updates /. (expected_bursts *. mean_burst_prefixes))
  in
  let flap_count () =
    max 1 (int_of_float (Rng.exponential rng ~mean:mean_flaps +. 0.5))
  in
  (* A cycling cursor (rather than sampling with replacement) makes
     coverage of the unstable set deterministic. *)
  let cursor = ref (Rng.int rng unstable_count) in
  let rec go at emitted acc =
    if emitted >= profile.updates then List.rev acc
    else
      let at = at +. interarrival rng in
      let prefixes_in_burst = burst_size rng ~xmin ~cap in
      let base = !cursor in
      cursor := (base + prefixes_in_burst) mod unstable_count;
      let budget = profile.updates - emitted in
      let updates =
        List.concat
          (List.init prefixes_in_burst (fun k ->
               let prefix = unstable.((base + k) mod unstable_count) in
               List.init (flap_count ()) (fun f -> make_update (base + k + f) prefix)))
      in
      let updates =
        if List.length updates > budget then List.filteri (fun i _ -> i < budget) updates
        else updates
      in
      go at (emitted + List.length updates) ({ at_s = at; updates } :: acc)
  in
  go 0.0 0 []

type stats = {
  total_updates : int;
  burst_count : int;
  distinct_prefixes : int;
  updated_fraction : float;
  bursts_at_most_3 : float;
  interarrival_ge_10s : float;
  interarrival_ge_60s : float;
  largest_burst : int;
}

let stats profile trace =
  let total_updates =
    List.fold_left (fun n (b : burst) -> n + List.length b.updates) 0 trace
  in
  let burst_count = List.length trace in
  let prefixes =
    List.fold_left
      (fun acc (b : burst) ->
        List.fold_left
          (fun acc u -> Prefix.Set.add (Update.prefix u) acc)
          acc b.updates)
      Prefix.Set.empty trace
  in
  let distinct_prefixes = Prefix.Set.cardinal prefixes in
  let burst_prefix_counts =
    List.map
      (fun (b : burst) ->
        Prefix.Set.cardinal
          (List.fold_left
             (fun acc u -> Prefix.Set.add (Update.prefix u) acc)
             Prefix.Set.empty b.updates))
      trace
  in
  let frac pred l =
    if l = [] then 0.0
    else
      float_of_int (List.length (List.filter pred l))
      /. float_of_int (List.length l)
  in
  let gaps =
    let times = List.map (fun b -> b.at_s) trace in
    match times with
    | [] | [ _ ] -> []
    | first :: rest ->
        let _, gaps =
          List.fold_left
            (fun (prev, acc) t ->
              let gap = t -. prev in
              (t, if gap >= 0.0 then gap :: acc else acc))
            (first, []) rest
        in
        gaps
  in
  {
    total_updates;
    burst_count;
    distinct_prefixes;
    updated_fraction =
      float_of_int distinct_prefixes /. float_of_int profile.prefixes;
    bursts_at_most_3 = frac (fun n -> n <= 3) burst_prefix_counts;
    interarrival_ge_10s = frac (fun g -> g >= 10.0) gaps;
    interarrival_ge_60s = frac (fun g -> g >= 60.0) gaps;
    largest_burst =
      List.fold_left (fun m n -> max m n) 0 burst_prefix_counts;
  }

(* ------------------------------------------------------------------ *)
(* Persistence: a line-oriented text format.
     B <at_s>
     A <peer> <prefix> <next_hop> <local_pref> <med> <origin> <as_path,>
     W <peer> <prefix> *)

let origin_code = function
  | Route.Igp -> "i"
  | Route.Egp -> "e"
  | Route.Incomplete -> "?"

let origin_of_code = function
  | "i" -> Route.Igp
  | "e" -> Route.Egp
  | "?" -> Route.Incomplete
  | other -> failwith (Printf.sprintf "Trace.load: bad origin %S" other)

let save trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# sdx-trace v1\n";
      List.iter
        (fun b ->
          Printf.fprintf oc "B %.3f\n" b.at_s;
          List.iter
            (fun u ->
              match u with
              | Update.Announce (r : Route.t) ->
                  Printf.fprintf oc "A %d %s %s %d %d %s %s\n"
                    (Asn.to_int r.learned_from)
                    (Prefix.to_string r.prefix)
                    (Ipv4.to_string r.next_hop)
                    r.local_pref r.med (origin_code r.origin)
                    (String.concat ","
                       (List.map
                          (fun a -> string_of_int (Asn.to_int a))
                          r.as_path))
              | Update.Withdraw { peer; prefix } ->
                  Printf.fprintf oc "W %d %s\n" (Asn.to_int peer)
                    (Prefix.to_string prefix))
            b.updates)
        trace)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let bursts = ref [] in
      let current_at = ref None in
      let current = ref [] in
      let flush () =
        match !current_at with
        | Some at_s ->
            bursts := { at_s; updates = List.rev !current } :: !bursts;
            current := []
        | None ->
            if !current <> [] then failwith "Trace.load: update before burst header"
      in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' (String.trim line) with
           | [ "" ] | [] -> ()
           | hash :: _ when String.length hash > 0 && hash.[0] = '#' -> ()
           | [ "B"; at ] ->
               flush ();
               current_at := Some (float_of_string at)
           | [ "A"; peer; prefix; next_hop; lp; med; origin; path ] ->
               let as_path =
                 if path = "" then []
                 else
                   List.map
                     (fun s -> Asn.of_int (int_of_string s))
                     (String.split_on_char ',' path)
               in
               current :=
                 Update.announce
                   (Route.make ~prefix:(Prefix.of_string prefix)
                      ~next_hop:(Ipv4.of_string next_hop)
                      ~as_path ~local_pref:(int_of_string lp)
                      ~med:(int_of_string med)
                      ~origin:(origin_of_code origin)
                      ~learned_from:(Asn.of_int (int_of_string peer))
                      ())
                 :: !current
           | [ "W"; peer; prefix ] ->
               current :=
                 Update.withdraw
                   ~peer:(Asn.of_int (int_of_string peer))
                   (Prefix.of_string prefix)
                 :: !current
           | _ -> failwith (Printf.sprintf "Trace.load: malformed line %S" line)
         done
       with End_of_file -> ());
      flush ();
      List.rev !bursts)

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>updates: %d in %d bursts@,\
     distinct prefixes updated: %d (%.2f%% of table)@,\
     bursts touching <=3 prefixes: %.1f%%@,\
     inter-arrival >=10s: %.1f%% | >=60s: %.1f%%@,\
     largest burst: %d prefixes@]"
    s.total_updates s.burst_count s.distinct_prefixes
    (100.0 *. s.updated_fraction)
    (100.0 *. s.bursts_at_most_3)
    (100.0 *. s.interarrival_ge_10s)
    (100.0 *. s.interarrival_ge_60s)
    s.largest_burst
