type t = Random.State.t

let create ~seed = Random.State.make [| seed |]
let int t n = Random.State.int t n
let float t f = Random.State.float t f
let bool t ~p = Random.State.float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let sample t l k =
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take k (shuffle t l)

let exponential t ~mean =
  let u = Random.State.float t 1.0 in
  -.mean *. log (1.0 -. u)

let pareto t ~xmin ~alpha =
  let u = Random.State.float t 1.0 in
  xmin /. ((1.0 -. u) ** (1.0 /. alpha))
