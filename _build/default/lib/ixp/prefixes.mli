(** Synthetic default-free routing table: a deterministic enumeration of
    disjoint prefixes standing in for the ~500k-entry global table the
    paper samples from. *)

open Sdx_net

val table : int -> Prefix.t list
(** [table n] is [n] pairwise-disjoint prefixes (a mix of /24 and
    shorter aggregates), deterministic in [n].
    @raise Invalid_argument when [n] exceeds the generator's space. *)

val nth : int -> Prefix.t
(** [nth i] is the [i]-th prefix of the enumeration. *)

val host_in : Prefix.t -> Ipv4.t
(** A representative host address inside a prefix (used by traffic
    generators). *)
