open Sdx_bgp

type kind = Eyeball | Transit | Content

type spec = {
  asn : Asn.t;
  kind : kind;
  prefix_count : int;
  port_count : int;
}

(* ASNs for generated participants start high enough not to collide with
   hand-written examples. *)
let base_asn = 10_000

let generate rng ~participants ~prefixes ?(multi_port_fraction = 0.1)
    ?(zipf_alpha = 1.8) () =
  if participants <= 0 then invalid_arg "Population.generate: no participants";
  let weights =
    Array.init participants (fun i ->
        1.0 /. (float_of_int (i + 1) ** zipf_alpha))
  in
  let total_weight = Array.fold_left ( +. ) 0.0 weights in
  (* Give every participant at least one prefix, distribute the rest by
     weight, and fix rounding drift on the largest participant. *)
  let counts =
    Array.map
      (fun w ->
        max 1
          (int_of_float
             (Float.round (w /. total_weight *. float_of_int prefixes))))
      weights
  in
  let drift = prefixes - Array.fold_left ( + ) 0 counts in
  counts.(0) <- max 1 (counts.(0) + drift);
  let kind_of i =
    match i mod 5 with
    | 0 | 1 -> Eyeball
    | 2 -> Transit
    | 3 | 4 -> Content
    | _ -> assert false
  in
  List.init participants (fun i ->
      {
        asn = Asn.of_int (base_asn + i);
        kind = kind_of i;
        prefix_count = counts.(i);
        port_count = (if Rng.bool rng ~p:multi_port_fraction then 2 else 1);
      })

let total specs = List.fold_left (fun n s -> n + s.prefix_count) 0 specs

let top_share specs ~fraction =
  let n = List.length specs in
  let k = max 1 (int_of_float (Float.round (fraction *. float_of_int n))) in
  let sorted =
    List.sort (fun a b -> Int.compare b.prefix_count a.prefix_count) specs
  in
  let top = List.filteri (fun i _ -> i < k) sorted in
  float_of_int (total top) /. float_of_int (total specs)

let bottom_share specs ~fraction =
  let n = List.length specs in
  let k = int_of_float (Float.round (fraction *. float_of_int n)) in
  let sorted =
    List.sort (fun a b -> Int.compare a.prefix_count b.prefix_count) specs
  in
  let bottom = List.filteri (fun i _ -> i < k) sorted in
  float_of_int (total bottom) /. float_of_int (total specs)

let by_kind specs kind = List.filter (fun s -> s.kind = kind) specs
