
type result = {
  bursts : int;
  updates : int;
  best_changed : int;
  reoptimizations : int;
  peak_extra_rules : int;
  final_rules : int;
  mean_update_ms : float;
  p99_update_ms : float;
  max_update_ms : float;
}

let run ?(quiet_gap_s = 60.0) runtime trace =
  let bursts = ref 0 in
  let updates = ref 0 in
  let best_changed = ref 0 in
  let reoptimizations = ref 0 in
  let peak_extra = ref 0 in
  let times = ref [] in
  let last_at = ref neg_infinity in
  List.iter
    (fun (b : Trace.burst) ->
      (* A long quiet gap gives the background stage time to run. *)
      if b.at_s -. !last_at >= quiet_gap_s && Sdx_core.Runtime.extra_rule_count runtime > 0
      then begin
        ignore (Sdx_core.Runtime.reoptimize runtime);
        incr reoptimizations
      end;
      last_at := b.at_s;
      incr bursts;
      List.iter
        (fun update ->
          let stats = Sdx_core.Runtime.handle_update runtime update in
          incr updates;
          if stats.best_changed then incr best_changed;
          times := (1000.0 *. stats.processing_s) :: !times)
        b.updates;
      peak_extra := max !peak_extra (Sdx_core.Runtime.extra_rule_count runtime))
    trace;
  let arr = Array.of_list !times in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  let mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 arr /. float_of_int n
  in
  let pct p = if n = 0 then 0.0 else arr.(int_of_float (p *. float_of_int (n - 1))) in
  {
    bursts = !bursts;
    updates = !updates;
    best_changed = !best_changed;
    reoptimizations = !reoptimizations;
    peak_extra_rules = !peak_extra;
    final_rules = Sdx_core.Runtime.rule_count runtime;
    mean_update_ms = mean;
    p99_update_ms = pct 0.99;
    max_update_ms = (if n = 0 then 0.0 else arr.(n - 1));
  }

let trace_for_workload rng (w : Workload.t) ~profile ~duration_s =
  let specs = Array.of_list w.specs in
  let universe = Array.of_list w.universe in
  let profile =
    { profile with Trace.prefixes = Array.length universe }
  in
  (* Updates come from real participants and touch real prefixes.  As in
     a live feed, not every announcement wins the decision process — the
     replay measures the realistic mix where only some updates move a
     best path (the paper: "not every BGP update induces changes in
     forwarding table entries"). *)
  let peer_of i = specs.(i mod Array.length specs).Population.asn in
  let prefix_of i = universe.(i mod Array.length universe) in
  let next_hop_of i = Workload.participant_port_ip (i mod Array.length specs) 0 in
  Trace.generate rng profile ~duration_s ~peer_of ~prefix_of ~next_hop_of ()

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>bursts: %d, updates: %d (%d moved a best path)@,\
     background re-optimizations: %d@,\
     peak fast-path rules: %d, final table: %d rules@,\
     per-update time: mean %.3f ms, p99 %.3f ms, max %.3f ms@]"
    r.bursts r.updates r.best_changed r.reoptimizations r.peak_extra_rules
    r.final_rules r.mean_update_ms r.p99_update_ms r.max_update_ms
