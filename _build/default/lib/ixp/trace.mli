(** Synthetic BGP update traces with the burst statistics the paper
    measured at AMS-IX, DE-CIX, and LINX (Table 1 and §4.3.2): only
    10-14% of prefixes see any update over a week, 75% of bursts touch
    at most three prefixes, burst inter-arrival times exceed 10 s 75% of
    the time and one minute half of the time. *)

open Sdx_bgp

type burst = { at_s : float; updates : Update.t list }
type t = burst list

type profile = {
  name : string;
  collector_peers : int;
  total_peers : int;
  prefixes : int;
  updates : int;
  updated_prefix_fraction : float;  (** Table 1's "prefixes seeing updates" *)
}

val ams_ix : profile
val de_cix : profile
val linx : profile
(** The three Table 1 rows (January 1-6, 2014). *)

val scale : profile -> float -> profile
(** [scale p f] shrinks prefix and update counts by [f] (e.g. 0.01 for a
    laptop-sized run), keeping the ratios. *)

val generate :
  Rng.t ->
  profile ->
  duration_s:float ->
  ?peer_of:(int -> Asn.t) ->
  ?prefix_of:(int -> Sdx_net.Prefix.t) ->
  ?next_hop_of:(int -> Sdx_net.Ipv4.t) ->
  unit ->
  t
(** A trace whose aggregate statistics match the profile: the configured
    number of updates spread over [duration_s], confined to the profile's
    unstable prefix share, with the §4.3.2 burst-size and inter-arrival
    distributions.  [peer_of], [prefix_of], and [next_hop_of] override
    the synthetic identities so a trace can target an existing exchange
    (see {!Replay}); defaults generate free-standing identities. *)

type stats = {
  total_updates : int;
  burst_count : int;
  distinct_prefixes : int;
  updated_fraction : float;  (** vs. the profile's prefix count *)
  bursts_at_most_3 : float;  (** fraction of bursts touching <= 3 prefixes *)
  interarrival_ge_10s : float;
  interarrival_ge_60s : float;
  largest_burst : int;
}

val stats : profile -> t -> stats
val pp_stats : Format.formatter -> stats -> unit

val save : t -> string -> unit
(** Writes the trace to a file in a line-oriented text format (burst
    headers followed by announce/withdraw records), so generated traces
    can be archived and replayed. *)

val load : string -> t
(** Reads a trace written by {!save}.
    @raise Failure on a malformed file. *)
