(** The wired IXP: border routers attached to the SDX fabric switch, with
    the runtime's compiled classifier installed.  This is the end-to-end
    path a packet takes in the deployment experiments. *)

open Sdx_net
open Sdx_bgp

type t

type delivery = {
  receiver : Asn.t;
  receiver_port : int;  (** the receiver's participant-local port index *)
  packet : Packet.t;
}

val create : ?switch_capacity:int -> Sdx_core.Runtime.t -> t
(** Builds one border router per physical participant port, installs the
    classifier into a fresh switch, and syncs every router's FIB.
    [switch_capacity] models the hardware rule budget of §4.2 ("even the
    most high-end SDN switch hardware can barely hold half a million
    rules"); installing beyond it raises
    {!Sdx_openflow.Table.Table_full}. *)

val runtime : t -> Sdx_core.Runtime.t
val switch : t -> Sdx_openflow.Switch.t
val router : t -> Asn.t -> Border_router.t
(** The router on the participant's first port.
    @raise Not_found for remote participants. *)

val sync : t -> unit
(** Brings the switch to the runtime's current ruleset (minimal
    flow-mods over the control channel) and refreshes every router FIB —
    run after BGP updates or a re-optimization. *)

val connection : t -> Sdx_openflow.Connection.t
(** The OpenFlow control channel to the fabric switch. *)

val last_sync_flow_mods : t -> int
(** Flow modifications the most recent {!sync} (or {!create}) sent —
    small after a single BGP update, large after a re-optimization. *)

val telemetry : t -> Telemetry.t
(** Traffic counters, updated by every {!inject}. *)

val attach_middlebox : t -> Asn.t -> Middlebox.t -> unit
(** Attaches a middlebox behind the participant's port: traffic the
    fabric delivers there is transformed and handed back to the host's
    border router for re-injection, so steering policies can chain
    functions on the way to the BGP destination (§8).  The host must
    have a physical port. *)

val detach_middlebox : t -> Asn.t -> unit

val inject : t -> from:Asn.t -> Packet.t -> delivery list
(** Sends a packet originating in [from]'s network: its border router
    tags and forwards it, then the fabric switch processes it.  A
    delivery landing on a middlebox host is transformed and re-injected
    (bounded depth guards against steering loops).  Returns the final
    deliveries (empty when routed nowhere, dropped, or blackholed). *)

val inject_at_port : t -> Packet.t -> delivery list
(** Processes a packet already located at a fabric port (packet.port),
    bypassing the border router — for tests that craft raw fabric
    traffic. *)

val inject_frame : t -> from:Asn.t -> bytes -> (delivery list, string) result
(** {!inject} over wire bytes: the frame is parsed ({!Sdx_net.Codec}),
    routed end to end, and the deliveries carry re-encoded frames in
    [frame].  Errors on malformed frames. *)

val frame_of_delivery : delivery -> bytes
(** The delivered packet as the bytes the receiving router would read
    off the wire. *)
