(** Middleboxes attached at SDX ports (§2 "redirection through
    middleboxes" and §8 "service chaining").

    A middlebox is a packet transformation hosted by a participant: the
    fabric delivers steered traffic to the host's port, the middlebox
    processes it, and the host's border router re-injects the result, so
    a chain of steering policies moves traffic through a sequence of
    functions on the way to its BGP destination. *)

open Sdx_net

type t = Packet.t -> Packet.t list
(** Returning [[]] consumes (drops) the packet. *)

val transcoder : to_port:int -> t
(** Rewrites the transport destination port — the video-transcoding
    middlebox of §3.2, observable in tests via the port change. *)

val scrubber : block:(Packet.t -> bool) -> t
(** Drops packets matching an attack signature, passes the rest — the
    DoS traffic scrubber of §2. *)

val nat : public_ip:Ipv4.t -> t
(** Rewrites the source address — a carrier-grade NAT. *)

val tee : t
(** Duplicates each packet (a passive monitor that also forwards). *)

val chain : t list -> t
(** Function composition of middlebox stages within one box. *)
