open Sdx_net
open Sdx_bgp

type t = {
  asn : Asn.t;
  port : Sdx_core.Participant.port;
  switch_port : int;
  mutable fib : Ipv4.t Prefix_trie.t;  (* destination prefix -> next hop *)
  mutable arp_cache : (Ipv4.t, Mac.t) Hashtbl.t;
}

let create config ~asn ~port =
  let participant = Sdx_core.Config.participant config asn in
  let port_rec = Sdx_core.Participant.port participant port in
  {
    asn;
    port = port_rec;
    switch_port = Sdx_core.Config.switch_port config asn port;
    fib = Prefix_trie.empty;
    arp_cache = Hashtbl.create 256;
  }

let asn t = t.asn
let switch_port t = t.switch_port

let sync t runtime =
  let responder = Sdx_core.Runtime.arp runtime in
  let fib, cache =
    Sdx_core.Compile.fold_announcements
      (Sdx_core.Runtime.compiled runtime)
      (Sdx_core.Runtime.config runtime)
      ~receiver:t.asn
      (fun prefix (route : Route.t) (fib, cache) ->
        (match Sdx_arp.Responder.query responder route.next_hop with
        | Some mac -> Hashtbl.replace cache route.next_hop mac
        | None -> ());
        (Prefix_trie.add prefix route.next_hop fib, cache))
      (Prefix_trie.empty, Hashtbl.create 256)
  in
  t.fib <- fib;
  t.arp_cache <- cache

let fib_size t = Prefix_trie.cardinal t.fib
let next_hop t addr = Option.map snd (Prefix_trie.longest_match addr t.fib)

let send t (pkt : Packet.t) =
  match Prefix_trie.longest_match pkt.dst_ip t.fib with
  | None -> None
  | Some (_, nh) -> (
      match Hashtbl.find_opt t.arp_cache nh with
      | None -> None
      | Some mac ->
          Some { pkt with src_mac = t.port.mac; dst_mac = mac; port = t.switch_port })
