open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core

let mac s = Mac.of_string s
let ip s = Ipv4.of_string s
let pfx s = Prefix.of_string s

module Fig5a = struct
  let as_a = Asn.of_int 100
  let as_b = Asn.of_int 200
  let as_c = Asn.of_int 300

  (* The AWS prefix reached through Transit Portal at Wisconsin (via AS A)
     and Clemson (via AS B). *)
  let aws_prefix = pfx "54.192.0.0/16"
  let aws_host = ip "54.192.1.10"
  let wisconsin = Asn.of_int 2381
  let clemson = Asn.of_int 12148
  let amazon = Asn.of_int 16509

  let participant_a =
    Participant.make ~asn:as_a
      ~ports:[ (mac "aa:00:00:00:00:01", ip "172.0.0.1") ]
      ()

  let participant_b =
    Participant.make ~asn:as_b
      ~ports:[ (mac "bb:00:00:00:00:01", ip "172.0.0.2") ]
      ()

  let participant_c outbound =
    Participant.make ~asn:as_c
      ~ports:[ (mac "cc:00:00:00:00:01", ip "172.0.0.3") ]
      ~outbound ()

  (* AS C's application-specific peering policy: web traffic to the AWS
     prefix travels via AS B; everything else follows BGP (via AS A). *)
  let peering_policy =
    [
      Ppolicy.fwd
        (Pred.and_ (Pred.dst_ip aws_prefix) (Pred.dst_port 80))
        (Ppolicy.Peer as_b);
    ]

  let flow ~name ~dst_port =
    {
      Deployment.name;
      from = as_c;
      packet =
        Packet.make ~src_ip:(ip "10.3.0.1") ~dst_ip:aws_host
          ~proto:Packet.proto_udp ~src_port:5000 ~dst_port ();
      rate_mbps = 1.0;
    }

  let classify (d : Network.delivery) =
    if Asn.equal d.receiver as_a then Some "AS-A"
    else if Asn.equal d.receiver as_b then Some "AS-B"
    else None

  let scenario ?(duration = 1800) ?(policy_at = 565) ?(withdraw_at = 1253) () =
    {
      Deployment.participants = [ participant_a; participant_b; participant_c [] ];
      seed_routes =
        [
          (as_a, 0, aws_prefix, [ as_a; wisconsin; amazon ]);
          (as_b, 0, aws_prefix, [ as_b; clemson; amazon ]);
        ];
      flows =
        [
          flow ~name:"web" ~dst_port:80;
          flow ~name:"udp-4321" ~dst_port:4321;
          flow ~name:"udp-8080" ~dst_port:8080;
        ];
      events =
        [
          ( policy_at,
            Deployment.Set_policies
              { asn = as_c; inbound = []; outbound = peering_policy } );
          (withdraw_at, Deployment.Withdraw_route { peer = as_b; prefix = aws_prefix });
        ];
      duration;
      classify;
    }
end

module Fig5b = struct
  let as_a = Asn.of_int 100
  let as_b = Asn.of_int 200
  let tenant = Asn.of_int 14618

  let anycast_prefix = pfx "74.125.1.0/24"
  let anycast_service = ip "74.125.1.1"
  let aws_prefix = pfx "184.72.0.0/16"
  let instance1 = ip "184.72.0.97"
  let instance2 = ip "184.72.128.9"
  let client1 = ip "204.57.0.67"
  let client2 = ip "204.57.0.68"

  let participant_a =
    Participant.make ~asn:as_a
      ~ports:[ (mac "aa:00:00:00:00:02", ip "172.0.1.1") ]
      ()

  let participant_b =
    Participant.make ~asn:as_b
      ~ports:[ (mac "bb:00:00:00:00:02", ip "172.0.1.2") ]
      ()

  (* The remote AWS tenant: no physical port, originates the anycast
     prefix at the SDX and terminates it with its inbound policy. *)
  let participant_tenant inbound =
    Participant.make ~asn:tenant ~ports:[] ~inbound
      ~originated:[ anycast_prefix ] ()

  (* Before the experiment's event: all anycast requests are rewritten to
     instance #1 (reached via AS B). *)
  let base_policy =
    [
      Ppolicy.rewrite
        (Pred.dst_ip (Prefix.make anycast_service 32))
        (Mods.make ~dst_ip:instance1 ());
    ]

  (* The load-balance policy of Figure 5b: requests from [client1] shift
     to instance #2; everything else stays on instance #1. *)
  let lb_policy =
    Ppolicy.rewrite
      (Pred.and_
         (Pred.dst_ip (Prefix.make anycast_service 32))
         (Pred.src_ip (Prefix.make client1 32)))
      (Mods.make ~dst_ip:instance2 ())
    :: base_policy

  let flow ~name ~src_ip =
    {
      Deployment.name;
      from = as_a;
      packet =
        Packet.make ~src_ip ~dst_ip:anycast_service ~proto:Packet.proto_udp
          ~src_port:5000 ~dst_port:8000 ();
      rate_mbps = 1.0;
    }

  let classify (d : Network.delivery) =
    if Asn.equal d.receiver as_b then
      if Ipv4.equal d.packet.dst_ip instance1 then Some "AWS Instance #1"
      else if Ipv4.equal d.packet.dst_ip instance2 then Some "AWS Instance #2"
      else None
    else None

  let scenario ?(duration = 600) ?(policy_at = 246) () =
    {
      Deployment.participants =
        [ participant_a; participant_b; participant_tenant base_policy ];
      seed_routes = [ (as_b, 0, aws_prefix, [ as_b; Asn.of_int 16509 ]) ];
      flows =
        [
          flow ~name:"client-67" ~src_ip:client1;
          flow ~name:"client-68" ~src_ip:client2;
        ];
      events =
        [
          ( policy_at,
            Deployment.Set_policies
              { asn = tenant; inbound = lb_policy; outbound = [] } );
        ];
      duration;
      classify;
    }
end
