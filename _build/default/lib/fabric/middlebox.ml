open Sdx_net

type t = Packet.t -> Packet.t list

let transcoder ~to_port (pkt : Packet.t) = [ { pkt with dst_port = to_port } ]
let scrubber ~block (pkt : Packet.t) = if block pkt then [] else [ pkt ]
let nat ~public_ip (pkt : Packet.t) = [ { pkt with src_ip = public_ip } ]
let tee (pkt : Packet.t) = [ pkt; pkt ]

let chain stages pkt =
  List.fold_left
    (fun pkts stage -> List.concat_map stage pkts)
    [ pkt ] stages
