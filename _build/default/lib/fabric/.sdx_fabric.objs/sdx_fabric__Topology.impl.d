lib/fabric/topology.ml: Classifier Hashtbl Int List Mods Option Packet Pattern Printf Queue Sdx_core Sdx_net Sdx_policy
