lib/fabric/telemetry.ml: Asn Hashtbl Int Ipv4 List Option Packet Sdx_bgp Sdx_net
