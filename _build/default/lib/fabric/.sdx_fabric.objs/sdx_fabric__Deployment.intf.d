lib/fabric/deployment.mli: Asn Network Packet Prefix Sdx_bgp Sdx_core Sdx_net
