lib/fabric/border_router.mli: Asn Ipv4 Packet Sdx_bgp Sdx_core Sdx_net
