lib/fabric/telemetry.mli: Asn Ipv4 Packet Sdx_bgp Sdx_net
