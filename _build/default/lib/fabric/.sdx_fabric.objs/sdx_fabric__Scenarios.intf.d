lib/fabric/scenarios.mli: Asn Deployment Sdx_bgp
