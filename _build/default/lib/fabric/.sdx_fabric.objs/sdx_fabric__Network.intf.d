lib/fabric/network.mli: Asn Border_router Middlebox Packet Sdx_bgp Sdx_core Sdx_net Sdx_openflow Telemetry
