lib/fabric/topology.mli: Packet Sdx_net Sdx_policy
