lib/fabric/deployment.ml: Asn Hashtbl Int List Network Option Packet Prefix Sdx_bgp Sdx_core Sdx_net
