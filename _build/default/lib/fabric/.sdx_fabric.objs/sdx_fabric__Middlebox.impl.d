lib/fabric/middlebox.ml: List Packet Sdx_net
