lib/fabric/border_router.ml: Asn Hashtbl Ipv4 Mac Option Packet Prefix_trie Route Sdx_arp Sdx_bgp Sdx_core Sdx_net
