lib/fabric/middlebox.mli: Ipv4 Packet Sdx_net
