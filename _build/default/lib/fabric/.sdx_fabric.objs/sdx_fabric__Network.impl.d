lib/fabric/network.ml: Asn Border_router Codec Hashtbl List Middlebox Packet Result Sdx_bgp Sdx_core Sdx_net Sdx_openflow Telemetry
