lib/fabric/scenarios.ml: Asn Deployment Ipv4 Mac Mods Network Packet Participant Ppolicy Pred Prefix Sdx_bgp Sdx_core Sdx_net Sdx_policy
