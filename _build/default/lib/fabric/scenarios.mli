(** The two live experiments of §5.2 as ready-made scenarios, shared by
    the examples and the Figure 5 benchmarks. *)

open Sdx_bgp

module Fig5a : sig
  (** Application-specific peering (Figure 4a / 5a): AS C reaches an AWS
      prefix via AS A and AS B; at [policy_at] it installs a policy
      diverting port-80 traffic through AS B; at [withdraw_at] AS B's
      route is withdrawn and all traffic shifts back to AS A. *)

  val as_a : Asn.t
  val as_b : Asn.t
  val as_c : Asn.t

  val scenario :
    ?duration:int -> ?policy_at:int -> ?withdraw_at:int -> unit -> Deployment.scenario
  (** Defaults follow the paper: duration 1800 s, policy at 565 s,
      withdrawal at 1253 s.  Sinks are named ["AS-A"] and ["AS-B"]. *)
end

module Fig5b : sig
  (** Wide-area load balancing (Figure 4b / 5b): a remote AWS tenant
      originates an anycast service prefix at the SDX; at [policy_at] it
      installs a policy steering one client source to instance #2. *)

  val as_a : Asn.t
  val as_b : Asn.t
  val tenant : Asn.t

  val scenario : ?duration:int -> ?policy_at:int -> unit -> Deployment.scenario
  (** Defaults follow the paper: duration 600 s, policy at 246 s.  Sinks
      are named ["AWS Instance #1"] and ["AWS Instance #2"]. *)
end
