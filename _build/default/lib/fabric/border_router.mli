(** A participant's border router — stage 1 of the multi-stage FIB of
    Figure 2.

    The router consumes the routes the SDX re-advertises to its AS,
    resolves each next hop through ARP (so virtual next hops resolve to
    virtual MACs), and tags outgoing packets by setting their destination
    MAC before handing them to the fabric.  This is exactly how the SDX
    offloads the per-prefix table to unmodified BGP routers. *)

open Sdx_net
open Sdx_bgp

type t

val create : Sdx_core.Config.t -> asn:Asn.t -> port:int -> t
(** Router attached through the participant's [port]-th interface.
    @raise Invalid_argument if the participant has no such port. *)

val asn : t -> Asn.t
val switch_port : t -> int

val sync : t -> Sdx_core.Runtime.t -> unit
(** Rebuilds the FIB from the SDX's current announcements to this AS and
    re-resolves every next hop through the controller's ARP responder. *)

val fib_size : t -> int

val next_hop : t -> Ipv4.t -> Ipv4.t option
(** The FIB's next-hop address for a destination, if any. *)

val send : t -> Packet.t -> Packet.t option
(** Prepare a packet from this AS's network for the fabric: longest-
    prefix-match the destination, set the source MAC to the router
    interface, the destination MAC to the (virtual) next hop's MAC, and
    the location to the fabric port.  [None] when the router has no
    route or the next hop does not resolve. *)
