open Sdx_net
open Sdx_bgp

type t = {
  tx : (Asn.t, int) Hashtbl.t;
  rx : (Asn.t, int) Hashtbl.t;
  drops : (Asn.t, int) Hashtbl.t;
  pairs : (Asn.t * Asn.t, int) Hashtbl.t;
  sources : (Ipv4.t * Asn.t, int) Hashtbl.t;
  mutable total : int;
}

let create () =
  {
    tx = Hashtbl.create 64;
    rx = Hashtbl.create 64;
    drops = Hashtbl.create 64;
    pairs = Hashtbl.create 256;
    sources = Hashtbl.create 256;
    total = 0;
  }

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let record t ~src ~packet ~receivers =
  t.total <- t.total + 1;
  bump t.tx src 1;
  match receivers with
  | [] -> bump t.drops src 1
  | rs ->
      List.iter
        (fun r ->
          bump t.rx r 1;
          bump t.pairs (src, r) 1;
          bump t.sources (packet.Packet.src_ip, r) 1)
        rs

let get tbl key = Option.value (Hashtbl.find_opt tbl key) ~default:0
let tx t asn = get t.tx asn
let rx t asn = get t.rx asn
let dropped t asn = get t.drops asn

let matrix t =
  List.sort
    (fun (_, _, a) (_, _, b) -> Int.compare b a)
    (Hashtbl.fold (fun (s, r) n acc -> (s, r, n) :: acc) t.pairs [])

let top_sources t ~toward =
  List.sort
    (fun (_, a) (_, b) -> Int.compare b a)
    (Hashtbl.fold
       (fun (src_ip, r) n acc ->
         if Asn.equal r toward then (src_ip, n) :: acc else acc)
       t.sources [])

let total t = t.total

let reset t =
  Hashtbl.reset t.tx;
  Hashtbl.reset t.rx;
  Hashtbl.reset t.drops;
  Hashtbl.reset t.pairs;
  Hashtbl.reset t.sources;
  t.total <- 0
