open Sdx_net

type flow_mod_command = Add | Delete_strict | Delete_by_cookie

type t =
  | Flow_mod of { command : flow_mod_command; cookie : int; flow : Flow.t }
  | Barrier_request of int
  | Barrier_reply of int
  | Packet_out of Packet.t
  | Packet_in of { buffer_id : int; packet : Packet.t }
  | Echo_request of int
  | Echo_reply of int

let add ?(cookie = 0) flow = Flow_mod { command = Add; cookie; flow }
let delete ?(cookie = 0) flow = Flow_mod { command = Delete_strict; cookie; flow }

let delete_cookie cookie =
  Flow_mod
    {
      command = Delete_by_cookie;
      cookie;
      flow = Flow.make ~priority:0 ~pattern:Sdx_policy.Pattern.all ~actions:[];
    }

let pp fmt = function
  | Flow_mod { command; cookie; flow } ->
      let cmd =
        match command with
        | Add -> "add"
        | Delete_strict -> "delete"
        | Delete_by_cookie -> "delete-cookie"
      in
      Format.fprintf fmt "flow_mod %s cookie=%d %a" cmd cookie Flow.pp flow
  | Barrier_request xid -> Format.fprintf fmt "barrier_request xid=%d" xid
  | Barrier_reply xid -> Format.fprintf fmt "barrier_reply xid=%d" xid
  | Packet_out p -> Format.fprintf fmt "packet_out %a" Packet.pp p
  | Packet_in { buffer_id; packet } ->
      Format.fprintf fmt "packet_in buf=%d %a" buffer_id Packet.pp packet
  | Echo_request xid -> Format.fprintf fmt "echo_request xid=%d" xid
  | Echo_reply xid -> Format.fprintf fmt "echo_reply xid=%d" xid
