open Sdx_policy

type t = { priority : int; pattern : Pattern.t; actions : Mods.t list }

let make ~priority ~pattern ~actions = { priority; pattern; actions }
let is_drop t = t.actions = []

let of_classifier ?(base_priority = 65535) (c : Classifier.t) =
  List.mapi
    (fun i (r : Classifier.rule) ->
      { priority = base_priority - i; pattern = r.pattern; actions = r.action })
    c

let pp fmt t =
  Format.fprintf fmt "@[<h>prio=%d %a -> [%a]@]" t.priority Pattern.pp t.pattern
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Mods.pp)
    t.actions
