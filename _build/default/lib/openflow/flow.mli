(** OpenFlow-style flow entries: a priority, a match, and an action set.

    The action set is a list of header-modification atoms; each atom whose
    [port] field is set emits the packet on that port (multicast when the
    list has several atoms); the empty list drops the packet. *)

open Sdx_policy

type t = {
  priority : int;  (** higher wins *)
  pattern : Pattern.t;
  actions : Mods.t list;
}

val make : priority:int -> pattern:Pattern.t -> actions:Mods.t list -> t

val is_drop : t -> bool

val of_classifier : ?base_priority:int -> Classifier.t -> t list
(** Converts a first-match classifier to flow entries with strictly
    descending priorities, preserving semantics.  [base_priority]
    (default [65535]) is assigned to the classifier's first rule. *)

val pp : Format.formatter -> t -> unit
