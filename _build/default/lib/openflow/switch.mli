(** A software OpenFlow switch: one or more flow tables in a pipeline plus
    packet-processing semantics.

    The SDX data plane uses a single table (the policy compiler flattens
    the virtual topology into it); the multi-table pipeline also models
    the multi-stage FIB of Figure 2 for tests that keep the stages
    separate. *)

open Sdx_net

type t

val create : ?tables:int -> ?capacity:int -> unit -> t
(** [tables] (default 1) flow tables, each with optional [capacity]. *)

val table : t -> int -> Table.t
(** @raise Invalid_argument on an out-of-range table id. *)

val table_count : t -> int

val process : t -> Packet.t -> Packet.t list
(** Runs the packet through table 0.  Each action atom applies its header
    rewrites; if the atom relocates the packet ([port] set), the packet
    leaves the pipeline on that port; otherwise it continues to the next
    table (goto-table semantics), or is delivered at its current location
    after the last table.  A packet matching no entry is dropped. *)

val rule_count : t -> int
(** Total entries across all tables. *)

val install_classifier : t -> ?table:int -> ?base_priority:int -> Sdx_policy.Classifier.t -> unit
(** Installs a compiled classifier into the given table (default 0). *)
