(** A single flow table: priority-ordered flow entries with per-entry hit
    counters and an optional capacity limit, modeling the rule-table
    budget the paper's §4.2 is about (high-end switches hold about half a
    million rules). *)

open Sdx_net
open Sdx_policy

type t

exception Table_full

val create : ?capacity:int -> unit -> t

val install : t -> Flow.t -> unit
(** OpenFlow ADD semantics: an entry with the same priority and match is
    overwritten in place (its counter resets).
    @raise Table_full when the capacity would be exceeded. *)

val install_all : t -> Flow.t list -> unit

val remove : t -> priority:int -> pattern:Pattern.t -> unit
val clear : t -> unit

val remove_where : t -> (Flow.t -> bool) -> int
(** Removes all matching entries, returns how many were removed. *)

val lookup : t -> Packet.t -> Flow.t option
(** Highest-priority matching entry; among equal priorities the earliest
    installed wins. *)

val size : t -> int
val capacity : t -> int option
val entries : t -> Flow.t list
(** In match order (descending priority). *)

val hits : t -> priority:int -> pattern:Pattern.t -> int
(** Packet counter of an entry; 0 when absent. *)

val pp : Format.formatter -> t -> unit
