lib/openflow/flow.ml: Classifier Format List Mods Pattern Sdx_policy
