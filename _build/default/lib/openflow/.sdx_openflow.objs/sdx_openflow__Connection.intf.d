lib/openflow/connection.mli: Flow Message Packet Sdx_net Switch
