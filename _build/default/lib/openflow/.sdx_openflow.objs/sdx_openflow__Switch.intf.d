lib/openflow/switch.mli: Packet Sdx_net Sdx_policy Table
