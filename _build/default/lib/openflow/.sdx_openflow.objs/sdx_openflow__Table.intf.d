lib/openflow/table.mli: Flow Format Packet Pattern Sdx_net Sdx_policy
