lib/openflow/connection.ml: Flow Hashtbl List Message Option Switch Table
