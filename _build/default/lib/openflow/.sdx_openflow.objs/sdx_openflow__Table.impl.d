lib/openflow/table.ml: Flow Format Int List Pattern Sdx_policy
