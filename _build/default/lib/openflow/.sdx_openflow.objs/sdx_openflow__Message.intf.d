lib/openflow/message.mli: Flow Format Packet Sdx_net
