lib/openflow/flow.mli: Classifier Format Mods Pattern Sdx_policy
