lib/openflow/switch.ml: Array Flow List Mods Option Packet Printf Sdx_net Sdx_policy Table
