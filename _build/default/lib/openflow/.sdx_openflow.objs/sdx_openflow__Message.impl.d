lib/openflow/message.ml: Flow Format Packet Sdx_net Sdx_policy
