(** OpenFlow-style controller/switch messages.

    The subset a software-defined exchange actually exercises: flow
    modifications (with cookies so related rules can be deleted
    together), barriers for ordering, echo keepalives, and packet-in /
    packet-out for table misses. *)

open Sdx_net

type flow_mod_command =
  | Add
  | Delete_strict  (** delete the entry matching priority and pattern exactly *)
  | Delete_by_cookie  (** delete every entry carrying the cookie *)

type t =
  | Flow_mod of { command : flow_mod_command; cookie : int; flow : Flow.t }
  | Barrier_request of int  (** xid *)
  | Barrier_reply of int
  | Packet_out of Packet.t
  | Packet_in of { buffer_id : int; packet : Packet.t }
      (** sent switch-to-controller on table miss *)
  | Echo_request of int
  | Echo_reply of int

val add : ?cookie:int -> Flow.t -> t
val delete : ?cookie:int -> Flow.t -> t
val delete_cookie : int -> t
val pp : Format.formatter -> t -> unit
