open Sdx_net
open Sdx_policy

type t = { tables : Table.t array }

let create ?(tables = 1) ?capacity () =
  if tables < 1 then invalid_arg "Switch.create: need at least one table";
  { tables = Array.init tables (fun _ -> Table.create ?capacity ()) }

let table t i =
  if i < 0 || i >= Array.length t.tables then
    invalid_arg (Printf.sprintf "Switch.table: no table %d" i)
  else t.tables.(i)

let table_count t = Array.length t.tables

let process t pkt =
  (* [stage i pkt] runs [pkt] through tables i.. and returns the packets
     that leave the switch. *)
  let rec stage i pkt =
    if i >= Array.length t.tables then [ pkt ]
    else
      match Table.lookup t.tables.(i) pkt with
      | None -> []
      | Some flow ->
          List.concat_map
            (fun (m : Mods.t) ->
              let pkt' = Mods.apply m pkt in
              if Option.is_some m.port then [ pkt' ] else stage (i + 1) pkt')
            flow.Flow.actions
  in
  Packet.Set.elements (Packet.Set.of_list (stage 0 pkt))

let rule_count t =
  Array.fold_left (fun acc tbl -> acc + Table.size tbl) 0 t.tables

let install_classifier t ?(table = 0) ?base_priority c =
  Table.install_all t.tables.(table) (Flow.of_classifier ?base_priority c)
