(** Match patterns: the predicate half of a flow rule.

    Each field is either wildcarded ([None]) or constrained; IP fields are
    constrained by CIDR prefixes, all other fields by exact values.  A
    pattern denotes the set of packets satisfying every constraint, so
    [all] denotes the full flow space and intersection is per-field. *)

open Sdx_net

type t = {
  port : int option;
  src_mac : Mac.t option;
  dst_mac : Mac.t option;
  eth_type : int option;
  src_ip : Prefix.t option;
  dst_ip : Prefix.t option;
  proto : int option;
  src_port : int option;
  dst_port : int option;
}

val all : t
(** The wildcard pattern, matching every packet. *)

val is_all : t -> bool

val make :
  ?port:int ->
  ?src_mac:Mac.t ->
  ?dst_mac:Mac.t ->
  ?eth_type:int ->
  ?src_ip:Prefix.t ->
  ?dst_ip:Prefix.t ->
  ?proto:int ->
  ?src_port:int ->
  ?dst_port:int ->
  unit ->
  t

val matches : t -> Packet.t -> bool

val inter : t -> t -> t option
(** Set intersection; [None] when the patterns are disjoint. *)

val subset : t -> t -> bool
(** [subset p q] is [true] iff every packet matching [p] matches [q]. *)

val pull_back : Mods.t -> t -> t option
(** [pull_back m p] is the weakest pattern [p'] such that a packet
    matches [p'] iff it matches [p] after [m] is applied.  [None] when no
    packet can match [p] after [m] (a field [m] sets conflicts with [p]'s
    constraint on it). *)

val field_count : t -> int
(** Number of constrained (non-wildcard) fields. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with {!equal}; wildcarded and constrained
    fields never collide. *)

module Tbl : Hashtbl.S with type key = t
(** Hashtables keyed on patterns via {!hash}/{!equal}, replacing
    polymorphic hashing on the hot composition paths. *)

val pp : Format.formatter -> t -> unit
