(** Boolean predicates over packet headers — the [match(...)] half of the
    Pyretic-style policy language of SDX (§3.1 of the paper). *)

open Sdx_net

type t =
  | True
  | False
  | Test of Pattern.t  (** conjunction of single-field constraints *)
  | And of t * t
  | Or of t * t
  | Not of t

val eval : t -> Packet.t -> bool

(* Constructors, mirroring the paper's [match(field=value)] notation. *)

val port : int -> t
val src_mac : Mac.t -> t
val dst_mac : Mac.t -> t
val eth_type : int -> t
val src_ip : Prefix.t -> t
val dst_ip : Prefix.t -> t
val proto : int -> t
val src_port : int -> t
val dst_port : int -> t

val and_ : t -> t -> t
(** Smart conjunction: folds [True]/[False] and merges two [Test]s into
    one when their patterns intersect. *)

val or_ : t -> t -> t
val not_ : t -> t

val conj : t list -> t
val disj : t list -> t

val any_of_ports : int list -> t
(** Disjunction of port tests; [False] on the empty list. *)

val any_of_dst_ips : Prefix.t list -> t
(** Disjunction of destination-prefix tests; [False] on the empty list. *)

val size : t -> int
(** Number of AST nodes, used by compiler statistics. *)

val pp : Format.formatter -> t -> unit
