lib/policy/pattern.mli: Format Mac Mods Packet Prefix Sdx_net
