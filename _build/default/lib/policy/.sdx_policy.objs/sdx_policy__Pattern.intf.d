lib/policy/pattern.mli: Format Hashtbl Mac Mods Packet Prefix Sdx_net
