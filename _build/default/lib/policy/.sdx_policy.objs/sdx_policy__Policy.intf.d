lib/policy/policy.mli: Format Mods Packet Pred Sdx_net
