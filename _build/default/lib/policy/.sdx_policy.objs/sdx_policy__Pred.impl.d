lib/policy/pred.ml: Format List Pattern
