lib/policy/pred.mli: Format Mac Packet Pattern Prefix Sdx_net
