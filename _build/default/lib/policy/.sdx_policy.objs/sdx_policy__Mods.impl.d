lib/policy/mods.ml: Format Ipv4 List Mac Option Packet Printf Sdx_net Stdlib String
