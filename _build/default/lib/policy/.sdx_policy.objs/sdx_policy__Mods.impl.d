lib/policy/mods.ml: Format Int Ipv4 List Mac Option Packet Printf Sdx_net Stdlib String
