lib/policy/mods.mli: Format Ipv4 Mac Packet Sdx_net
