lib/policy/pattern.ml: Format Hashtbl Int List Mac Mods Option Packet Prefix Printf Sdx_net Stdlib String
