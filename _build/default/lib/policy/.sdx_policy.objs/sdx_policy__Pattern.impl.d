lib/policy/pattern.ml: Format Int List Mac Mods Option Packet Prefix Printf Sdx_net Stdlib String
