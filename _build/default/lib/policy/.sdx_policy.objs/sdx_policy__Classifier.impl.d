lib/policy/classifier.ml: Format Hashtbl List Mods Packet Pattern Policy Pred Sdx_net
