lib/policy/classifier.ml: Array Format Hashtbl Int List Mac Mods Option Packet Pattern Policy Pred Sdx_net
