lib/policy/classifier.mli: Format Mods Packet Pattern Policy Pred Sdx_net
