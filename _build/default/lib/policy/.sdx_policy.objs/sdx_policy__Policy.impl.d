lib/policy/policy.ml: Format List Mods Packet Pred Sdx_net
