(** The Pyretic-style policy language (§3.1): a policy maps a located
    packet to a set of located packets.  Returning the empty set drops the
    packet; a singleton forwards it; multiple packets multicast. *)

open Sdx_net

type t =
  | Filter of Pred.t  (** pass packets matching the predicate, drop others *)
  | Mod of Mods.t  (** rewrite header fields and/or relocate *)
  | Union of t * t  (** parallel composition [+] *)
  | Seq of t * t  (** sequential composition [>>] *)
  | If of Pred.t * t * t  (** Pyretic's [if_] *)

val id : t
(** Passes every packet unchanged. *)

val drop : t

val filter : Pred.t -> t

val fwd : int -> t
(** [fwd p] relocates the packet to port [p]. *)

val modify : Mods.t -> t

val union : t list -> t
(** n-ary parallel composition; [drop] on the empty list. *)

val seq : t list -> t
(** n-ary sequential composition; [id] on the empty list. *)

val if_ : Pred.t -> t -> t -> t

val ( <+> ) : t -> t -> t
(** Infix parallel composition — the paper's [+]. *)

val ( >>> ) : t -> t -> t
(** Infix sequential composition — the paper's [>>]. *)

val eval : t -> Packet.t -> Packet.t list
(** Reference denotational semantics.  The result is duplicate-free and
    sorted; the compiled classifier must agree with it packet-for-packet
    (checked by property tests). *)

val size : t -> int
(** Number of AST nodes. *)

val pp : Format.formatter -> t -> unit
