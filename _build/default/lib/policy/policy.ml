open Sdx_net

type t =
  | Filter of Pred.t
  | Mod of Mods.t
  | Union of t * t
  | Seq of t * t
  | If of Pred.t * t * t

let id = Filter Pred.True
let drop = Filter Pred.False
let filter p = Filter p
let fwd port = Mod (Mods.make ~port ())
let modify m = Mod m

let union = function
  | [] -> drop
  | p :: rest -> List.fold_left (fun acc q -> Union (acc, q)) p rest

let seq = function
  | [] -> id
  | p :: rest -> List.fold_left (fun acc q -> Seq (acc, q)) p rest

let if_ c p q = If (c, p, q)
let ( <+> ) p q = Union (p, q)
let ( >>> ) p q = Seq (p, q)

let rec eval t pkt =
  match t with
  | Filter pred -> if Pred.eval pred pkt then [ pkt ] else []
  | Mod m -> [ Mods.apply m pkt ]
  | Union (p, q) ->
      Packet.Set.elements
        (Packet.Set.union
           (Packet.Set.of_list (eval p pkt))
           (Packet.Set.of_list (eval q pkt)))
  | Seq (p, q) ->
      let intermediate = eval p pkt in
      Packet.Set.elements
        (List.fold_left
           (fun acc pkt' -> Packet.Set.union acc (Packet.Set.of_list (eval q pkt')))
           Packet.Set.empty intermediate)
  | If (c, p, q) -> if Pred.eval c pkt then eval p pkt else eval q pkt

let rec size = function
  | Filter p -> Pred.size p
  | Mod _ -> 1
  | Union (p, q) | Seq (p, q) -> 1 + size p + size q
  | If (c, p, q) -> 1 + Pred.size c + size p + size q

let rec pp fmt = function
  | Filter p -> Format.fprintf fmt "filter(%a)" Pred.pp p
  | Mod m -> Format.fprintf fmt "mod%a" Mods.pp m
  | Union (p, q) -> Format.fprintf fmt "(%a + %a)" pp p pp q
  | Seq (p, q) -> Format.fprintf fmt "(%a >> %a)" pp p pp q
  | If (c, p, q) ->
      Format.fprintf fmt "if(%a){%a}else{%a}" Pred.pp c pp p pp q
