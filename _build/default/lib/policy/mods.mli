(** Partial header modifications: the action half of a flow rule.

    A modification assigns new values to a subset of packet fields.
    Setting [port] relocates the packet (Pyretic's [fwd]). *)

open Sdx_net

type t = {
  port : int option;
  src_mac : Mac.t option;
  dst_mac : Mac.t option;
  eth_type : int option;
  src_ip : Ipv4.t option;
  dst_ip : Ipv4.t option;
  proto : int option;
  src_port : int option;
  dst_port : int option;
}

val identity : t
(** Modifies nothing. *)

val is_identity : t -> bool

val make :
  ?port:int ->
  ?src_mac:Mac.t ->
  ?dst_mac:Mac.t ->
  ?eth_type:int ->
  ?src_ip:Ipv4.t ->
  ?dst_ip:Ipv4.t ->
  ?proto:int ->
  ?src_port:int ->
  ?dst_port:int ->
  unit ->
  t

val apply : t -> Packet.t -> Packet.t

val then_ : t -> t -> t
(** [then_ a b] is the modification equivalent to applying [a] and then
    [b]; assignments in [b] win on fields both set. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
