open Sdx_net

type t = {
  port : int option;
  src_mac : Mac.t option;
  dst_mac : Mac.t option;
  eth_type : int option;
  src_ip : Ipv4.t option;
  dst_ip : Ipv4.t option;
  proto : int option;
  src_port : int option;
  dst_port : int option;
}

let identity =
  {
    port = None;
    src_mac = None;
    dst_mac = None;
    eth_type = None;
    src_ip = None;
    dst_ip = None;
    proto = None;
    src_port = None;
    dst_port = None;
  }

let is_identity t = t = identity

let make ?port ?src_mac ?dst_mac ?eth_type ?src_ip ?dst_ip ?proto ?src_port
    ?dst_port () =
  { port; src_mac; dst_mac; eth_type; src_ip; dst_ip; proto; src_port; dst_port }

let apply t (p : Packet.t) : Packet.t =
  let set field v = Option.value v ~default:field in
  {
    Packet.port = set p.port t.port;
    src_mac = set p.src_mac t.src_mac;
    dst_mac = set p.dst_mac t.dst_mac;
    eth_type = set p.eth_type t.eth_type;
    src_ip = set p.src_ip t.src_ip;
    dst_ip = set p.dst_ip t.dst_ip;
    proto = set p.proto t.proto;
    src_port = set p.src_port t.src_port;
    dst_port = set p.dst_port t.dst_port;
  }

let then_ a b =
  let pick xa xb = if Option.is_some xb then xb else xa in
  {
    port = pick a.port b.port;
    src_mac = pick a.src_mac b.src_mac;
    dst_mac = pick a.dst_mac b.dst_mac;
    eth_type = pick a.eth_type b.eth_type;
    src_ip = pick a.src_ip b.src_ip;
    dst_ip = pick a.dst_ip b.dst_ip;
    proto = pick a.proto b.proto;
    src_port = pick a.src_port b.src_port;
    dst_port = pick a.dst_port b.dst_port;
  }

let compare = Stdlib.compare

let equal a b =
  Option.equal Int.equal a.port b.port
  && Option.equal Mac.equal a.src_mac b.src_mac
  && Option.equal Mac.equal a.dst_mac b.dst_mac
  && Option.equal Int.equal a.eth_type b.eth_type
  && Option.equal Ipv4.equal a.src_ip b.src_ip
  && Option.equal Ipv4.equal a.dst_ip b.dst_ip
  && Option.equal Int.equal a.proto b.proto
  && Option.equal Int.equal a.src_port b.src_port
  && Option.equal Int.equal a.dst_port b.dst_port

(* Same FNV-style mix as [Pattern.hash]; every field of a modification is
   exact, so one combiner per field suffices. *)
let hash t =
  let mix h v = (h * 0x01000193) lxor (v land max_int) in
  let exact h = function None -> mix h 0x5bd1e995 | Some v -> mix h (v + 1) in
  let exact_mac h = function
    | None -> mix h 0x5bd1e995
    | Some m -> mix h (Mac.to_int m + 1)
  in
  let exact_ip h = function
    | None -> mix h 0x5bd1e995
    | Some ip -> mix h (Ipv4.to_int ip + 1)
  in
  let h = exact 0x811c9dc5 t.port in
  let h = exact_mac h t.src_mac in
  let h = exact_mac h t.dst_mac in
  let h = exact h t.eth_type in
  let h = exact_ip h t.src_ip in
  let h = exact_ip h t.dst_ip in
  let h = exact h t.proto in
  let h = exact h t.src_port in
  exact h t.dst_port

let pp fmt t =
  let parts = ref [] in
  let add name to_s = function
    | Some v -> parts := Printf.sprintf "%s:=%s" name (to_s v) :: !parts
    | None -> ()
  in
  add "port" string_of_int t.port;
  add "src_mac" Mac.to_string t.src_mac;
  add "dst_mac" Mac.to_string t.dst_mac;
  add "eth_type" (Printf.sprintf "0x%04x") t.eth_type;
  add "src_ip" Ipv4.to_string t.src_ip;
  add "dst_ip" Ipv4.to_string t.dst_ip;
  add "proto" string_of_int t.proto;
  add "src_port" string_of_int t.src_port;
  add "dst_port" string_of_int t.dst_port;
  if !parts = [] then Format.pp_print_string fmt "id"
  else Format.fprintf fmt "{%s}" (String.concat "; " (List.rev !parts))
