type t =
  | True
  | False
  | Test of Pattern.t
  | And of t * t
  | Or of t * t
  | Not of t

let rec eval t pkt =
  match t with
  | True -> true
  | False -> false
  | Test p -> Pattern.matches p pkt
  | And (a, b) -> eval a pkt && eval b pkt
  | Or (a, b) -> eval a pkt || eval b pkt
  | Not a -> not (eval a pkt)

let port n = Test (Pattern.make ~port:n ())
let src_mac m = Test (Pattern.make ~src_mac:m ())
let dst_mac m = Test (Pattern.make ~dst_mac:m ())
let eth_type n = Test (Pattern.make ~eth_type:n ())
let src_ip p = Test (Pattern.make ~src_ip:p ())
let dst_ip p = Test (Pattern.make ~dst_ip:p ())
let proto n = Test (Pattern.make ~proto:n ())
let src_port n = Test (Pattern.make ~src_port:n ())
let dst_port n = Test (Pattern.make ~dst_port:n ())

let and_ a b =
  match (a, b) with
  | True, x | x, True -> x
  | False, _ | _, False -> False
  | Test p, Test q -> (
      match Pattern.inter p q with
      | Some r -> Test r
      | None -> False)
  | _ -> And (a, b)

let or_ a b =
  match (a, b) with
  | False, x | x, False -> x
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let not_ = function
  | True -> False
  | False -> True
  | Not a -> a
  | a -> Not a

let conj l = List.fold_left and_ True l
let disj l = List.fold_left or_ False l
let any_of_ports ports = disj (List.map port ports)
let any_of_dst_ips prefixes = disj (List.map dst_ip prefixes)

let rec size = function
  | True | False | Test _ -> 1
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Not a -> 1 + size a

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Test p -> Pattern.pp fmt p
  | And (a, b) -> Format.fprintf fmt "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a || %a)" pp a pp b
  | Not a -> Format.fprintf fmt "!%a" pp a
