open Sdx_net

type rule = { pattern : Pattern.t; action : Mods.t list }
type t = rule list

let canon_action atoms = List.sort_uniq Mods.compare atoms
let rule pattern action = { pattern; action = canon_action action }
let drop_all = [ rule Pattern.all [] ]
let id_all = [ rule Pattern.all [ Mods.identity ] ]

(* Cross products routinely emit the same pattern several times; only the
   first occurrence can ever match, so later ones are dropped via a
   hashtable — an O(1) shadow check that keeps composition linear in the
   output size.  Full (superset) shadow elimination lives in [optimize]. *)
let dedupe_patterns rules =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r.pattern then false
      else begin
        Hashtbl.add seen r.pattern ();
        true
      end)
    rules

let par c1 c2 =
  let cross =
    List.concat_map
      (fun r1 ->
        List.filter_map
          (fun r2 ->
            match Pattern.inter r1.pattern r2.pattern with
            | Some p -> Some (rule p (r1.action @ r2.action))
            | None -> None)
          c2)
      c1
  in
  dedupe_patterns cross

(* Sequential composition of one action atom with the whole second
   classifier: pull each pattern of [c2] back through the modification. *)
let seq_atom (a : Mods.t) c2 =
  List.filter_map
    (fun r2 ->
      match Pattern.pull_back a r2.pattern with
      | Some p -> Some (rule p (List.map (fun b -> Mods.then_ a b) r2.action))
      | None -> None)
    c2

let restrict p c =
  let confined =
    List.filter_map
      (fun r ->
        match Pattern.inter p r.pattern with
        | Some q -> Some { r with pattern = q }
        | None -> None)
      c
  in
  (* Total again: everything outside [p] is dropped. *)
  dedupe_patterns (confined @ drop_all)

let seq c1 c2 =
  let block r1 =
    match r1.action with
    | [] -> [ r1 ]
    | atoms ->
        let subs = List.map (fun a -> seq_atom a c2) atoms in
        let combined =
          match subs with
          | [] -> drop_all
          | first :: rest -> List.fold_left par first rest
        in
        List.filter_map
          (fun r ->
            match Pattern.inter r1.pattern r.pattern with
            | Some p -> Some { r with pattern = p }
            | None -> None)
          combined
  in
  dedupe_patterns (List.concat_map block c1)

(* Predicates compile to classifiers whose action is pass ([id]) or drop
   ([]); boolean connectives are cross products over those. *)
let bool_action b = if b then [ Mods.identity ] else []
let is_pass action = action <> []

let rec compile_pred (pred : Pred.t) : t =
  match pred with
  | True -> id_all
  | False -> drop_all
  | Test p -> dedupe_patterns [ rule p [ Mods.identity ]; rule Pattern.all [] ]
  | And (a, b) -> cross_bool (compile_pred a) (compile_pred b) ( && )
  | Or (a, b) -> cross_bool (compile_pred a) (compile_pred b) ( || )
  | Not a ->
      List.map
        (fun r -> { r with action = bool_action (not (is_pass r.action)) })
        (compile_pred a)

and cross_bool c1 c2 f =
  let cross =
    List.concat_map
      (fun r1 ->
        List.filter_map
          (fun r2 ->
            match Pattern.inter r1.pattern r2.pattern with
            | Some p ->
                Some (rule p (bool_action (f (is_pass r1.action) (is_pass r2.action))))
            | None -> None)
          c2)
      c1
  in
  dedupe_patterns cross

let rec compile (pol : Policy.t) : t =
  match pol with
  | Filter pred -> compile_pred pred
  | Mod m -> [ rule Pattern.all [ m ] ]
  | Union (p, q) -> par (compile p) (compile q)
  | Seq (p, q) -> seq (compile p) (compile q)
  | If (c, p, q) ->
      let cond = compile_pred c in
      let then_ = seq cond (compile p) in
      let else_ = seq (compile_pred (Pred.not_ c)) (compile q) in
      par then_ else_

let first_match c pkt = List.find_opt (fun r -> Pattern.matches r.pattern pkt) c

let eval c pkt =
  match first_match c pkt with
  | None -> []
  | Some r ->
      Packet.Set.elements
        (Packet.Set.of_list (List.map (fun m -> Mods.apply m pkt) r.action))

(* Remove rule [i] when an earlier rule's pattern is a superset (it can
   never match), and remove non-final rules whose action equals the final
   catch-all's action provided no rule in between intersects them with a
   different action (first-match would fall through to the same result). *)
let optimize c =
  let shadow_pruned =
    List.rev
      (List.fold_left
         (fun kept r ->
           if List.exists (fun r' -> Pattern.subset r.pattern r'.pattern) kept
           then kept
           else r :: kept)
         [] c)
  in
  match List.rev shadow_pruned with
  | [] -> []
  | last :: rev_body ->
      let body = List.rev rev_body in
      let rec prune = function
        | [] -> []
        | r :: rest ->
            let rest' = prune rest in
            let redundant =
              r.action = last.action
              && List.for_all
                   (fun r' ->
                     r'.action = r.action
                     || Pattern.inter r.pattern r'.pattern = None)
                   rest'
            in
            if redundant then rest' else r :: rest'
      in
      prune body @ [ last ]

let rule_count = List.length

let equivalent_on c1 c2 pkts =
  List.for_all (fun pkt -> eval c1 pkt = eval c2 pkt) pkts

let pp_rule fmt r =
  Format.fprintf fmt "@[<h>%a -> [%a]@]" Pattern.pp r.pattern
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Mods.pp)
    r.action

let pp fmt c =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule)
    c
